//! The composed parameter-update codec.
//!
//! Encodes a set of named tensors (the changed layers of a parameter
//! update), each either
//!
//! * **delta-coded** against the same-named tensor of the base model:
//!   `xor-delta → byte planes → per-plane zero-RLE`, or
//! * **raw** (the tensor's own bytes, zero-RLE'd), used for tensors with no
//!   base counterpart or whenever delta coding would not shrink the tensor.
//!
//! The encoder picks per tensor whichever is smaller, so the encoded update
//! is never larger than raw + small framing. A SHA-256 trailer seals the
//! frame. Decoding is bit-exact by construction and verified by checksum.
//!
//! ```text
//! frame  := MAGIC "MMCU" version(u16) count(varint) entry* sha256(32)
//! entry  := name_len(varint) name mode(u8) rank(varint) dims(varint*)
//!           payload_len(varint) payload
//! mode   := 0 raw-rle | 1 delta-rle
//! ```

use mmlib_tensor::hash::{Digest, Sha256};
use mmlib_tensor::{Shape, Tensor};

use crate::{byteplane, delta, rle, varint};

const MAGIC: &[u8; 4] = b"MMCU";
const VERSION: u16 = 1;

const MODE_RAW: u8 = 0;
const MODE_DELTA: u8 = 1;

/// Errors from encoding/decoding updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The frame is malformed or truncated.
    Corrupt(String),
    /// The frame checksum does not match.
    ChecksumMismatch,
    /// A delta-coded entry has no (or a mismatching) base tensor.
    MissingBase(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(m) => write!(f, "corrupt update frame: {m}"),
            CodecError::ChecksumMismatch => write!(f, "update frame checksum mismatch"),
            CodecError::MissingBase(n) => write!(f, "delta entry {n} has no matching base tensor"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An encoded update with its size statistics.
#[derive(Debug, Clone)]
pub struct EncodedUpdate {
    /// The framed bytes.
    pub bytes: Vec<u8>,
    /// Raw (uncompressed) size of the encoded tensors.
    pub raw_bytes: u64,
    /// How many tensors used delta mode.
    pub delta_entries: usize,
    /// How many tensors fell back to raw mode.
    pub raw_entries: usize,
}

impl EncodedUpdate {
    /// Compression ratio (raw / encoded); > 1 means the codec helped.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.bytes.len().max(1) as f64
    }
}

fn rle_planes(words: &[u32]) -> Vec<u8> {
    rle::encode(&byteplane::split(words))
}

/// Encodes `entries` (name → tensor), delta-coding against `base` when a
/// same-named, same-shaped base tensor exists and it pays off.
pub fn encode_update<'a>(
    entries: &[(&'a str, &'a Tensor)],
    base: &dyn Fn(&str) -> Option<&'a Tensor>,
) -> EncodedUpdate {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    varint::write_u64(entries.len() as u64, &mut out);

    let mut raw_bytes = 0u64;
    let mut delta_entries = 0usize;
    let mut raw_entries = 0usize;
    for (name, tensor) in entries {
        raw_bytes += tensor.nbytes() as u64;
        let own_words: Vec<u32> = tensor.data().iter().map(|v| v.to_bits()).collect();
        let raw_payload = rle_planes(&own_words);
        let delta_payload = base(name)
            .and_then(|b| delta::xor_words(tensor, b))
            .map(|d| rle_planes(&d));

        let (mode, payload) = match delta_payload {
            Some(dp) if dp.len() < raw_payload.len() => (MODE_DELTA, dp),
            _ => (MODE_RAW, raw_payload),
        };
        if mode == MODE_DELTA {
            delta_entries += 1;
        } else {
            raw_entries += 1;
        }

        varint::write_u64(name.len() as u64, &mut out);
        out.extend_from_slice(name.as_bytes());
        out.push(mode);
        varint::write_u64(tensor.shape().rank() as u64, &mut out);
        for &d in tensor.shape().dims() {
            varint::write_u64(d as u64, &mut out);
        }
        varint::write_u64(payload.len() as u64, &mut out);
        out.extend_from_slice(&payload);
    }

    let mut h = Sha256::new();
    h.update(&out);
    let digest = h.finalize();
    out.extend_from_slice(&digest.0);
    EncodedUpdate { bytes: out, raw_bytes, delta_entries, raw_entries }
}

/// Decodes an update frame, resolving delta entries against `base`.
pub fn decode_update<'a>(
    bytes: &[u8],
    base: &dyn Fn(&str) -> Option<&'a Tensor>,
) -> Result<Vec<(String, Tensor)>, CodecError> {
    if bytes.len() < 4 + 2 + 1 + 32 {
        return Err(CodecError::Corrupt("too short".into()));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 32);
    let mut h = Sha256::new();
    h.update(payload);
    let computed = h.finalize();
    let stored = Digest({
        let mut d = [0u8; 32];
        d.copy_from_slice(trailer);
        d
    });
    if stored != computed {
        return Err(CodecError::ChecksumMismatch);
    }

    let mut pos = 0usize;
    if &payload[..4] != MAGIC {
        return Err(CodecError::Corrupt("bad magic".into()));
    }
    pos += 4;
    let version = u16::from_le_bytes([payload[4], payload[5]]);
    if version != VERSION {
        return Err(CodecError::Corrupt(format!("unsupported version {version}")));
    }
    pos += 2;

    let read_varint = |pos: &mut usize| -> Result<u64, CodecError> {
        let (v, used) =
            varint::read_u64(&payload[*pos..]).ok_or(CodecError::Corrupt("bad varint".into()))?;
        *pos += used;
        Ok(v)
    };

    let count = read_varint(&mut pos)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let name_len = read_varint(&mut pos)? as usize;
        if pos + name_len > payload.len() {
            return Err(CodecError::Corrupt("truncated name".into()));
        }
        let name = std::str::from_utf8(&payload[pos..pos + name_len])
            .map_err(|_| CodecError::Corrupt("name not utf-8".into()))?
            .to_string();
        pos += name_len;
        if pos >= payload.len() {
            return Err(CodecError::Corrupt("truncated mode".into()));
        }
        let mode = payload[pos];
        pos += 1;
        let rank = read_varint(&mut pos)? as usize;
        if rank > 8 {
            return Err(CodecError::Corrupt(format!("implausible rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_varint(&mut pos)? as usize);
        }
        let shape = Shape::new(dims);
        let numel = shape.numel();
        if numel > (1 << 33) {
            return Err(CodecError::Corrupt(format!("implausible element count {numel}")));
        }
        let payload_len = read_varint(&mut pos)? as usize;
        if pos + payload_len > payload.len() {
            return Err(CodecError::Corrupt("truncated payload".into()));
        }
        let body = &payload[pos..pos + payload_len];
        pos += payload_len;

        let planes = rle::decode(body, numel * 4)
            .ok_or(CodecError::Corrupt("bad rle stream".into()))?;
        let words =
            byteplane::merge(&planes).ok_or(CodecError::Corrupt("bad byte planes".into()))?;
        let tensor = match mode {
            MODE_RAW => {
                let data: Vec<f32> = words.into_iter().map(f32::from_bits).collect();
                Tensor::from_vec(shape, data)
                    .map_err(|e| CodecError::Corrupt(format!("bad tensor: {e}")))?
            }
            MODE_DELTA => {
                let b = base(&name).ok_or_else(|| CodecError::MissingBase(name.clone()))?;
                if b.shape() != &shape {
                    return Err(CodecError::MissingBase(name.clone()));
                }
                delta::apply(b, &words).ok_or_else(|| CodecError::MissingBase(name.clone()))?
            }
            other => return Err(CodecError::Corrupt(format!("unknown mode {other}"))),
        };
        out.push((name, tensor));
    }
    if pos != payload.len() {
        return Err(CodecError::Corrupt("trailing bytes".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_tensor::Pcg32;
    use std::collections::BTreeMap;

    fn nearby(base: &Tensor, step: f32) -> Tensor {
        let mut t = base.clone();
        for v in t.data_mut().iter_mut() {
            *v += step * *v * 1e-4;
        }
        t
    }

    #[test]
    fn delta_mode_round_trips_and_compresses() {
        let mut rng = Pcg32::seeded(1);
        let base = Tensor::rand_normal([64, 64], 0.5, 0.2, &mut rng);
        let derived = nearby(&base, 1.0);
        let entries = vec![("fc.weight", &derived)];
        let base_fn = |name: &str| (name == "fc.weight").then_some(&base);
        let enc = encode_update(&entries, &base_fn);
        assert_eq!(enc.delta_entries, 1);
        assert!(enc.ratio() > 1.2, "ratio {}", enc.ratio());
        let dec = decode_update(&enc.bytes, &base_fn).unwrap();
        assert_eq!(dec.len(), 1);
        assert!(dec[0].1.bit_eq(&derived));
    }

    #[test]
    fn raw_fallback_round_trips_unrelated_tensors() {
        let mut rng = Pcg32::seeded(2);
        let base = Tensor::rand_normal([32, 32], 0.0, 1.0, &mut rng);
        let unrelated = Tensor::rand_normal([32, 32], 0.0, 1.0, &mut rng);
        let entries = vec![("w", &unrelated)];
        let base_fn = |name: &str| (name == "w").then_some(&base);
        let enc = encode_update(&entries, &base_fn);
        let dec = decode_update(&enc.bytes, &base_fn).unwrap();
        assert!(dec[0].1.bit_eq(&unrelated));
        // Never (meaningfully) larger than raw.
        assert!(enc.bytes.len() as u64 <= enc.raw_bytes + 128);
    }

    #[test]
    fn entries_without_base_are_raw() {
        let t = Tensor::ones([10]);
        let entries = vec![("new.layer", &t)];
        let none = |_: &str| None;
        let enc = encode_update(&entries, &none);
        assert_eq!(enc.raw_entries, 1);
        let dec = decode_update(&enc.bytes, &none).unwrap();
        assert!(dec[0].1.bit_eq(&t));
    }

    #[test]
    fn missing_base_at_decode_is_reported() {
        let mut rng = Pcg32::seeded(3);
        let base = Tensor::rand_normal([128], 0.5, 0.1, &mut rng);
        let derived = nearby(&base, 1.0);
        let entries = vec![("w", &derived)];
        let with_base = |name: &str| (name == "w").then_some(&base);
        let enc = encode_update(&entries, &with_base);
        if enc.delta_entries == 1 {
            let none = |_: &str| None;
            assert!(matches!(decode_update(&enc.bytes, &none), Err(CodecError::MissingBase(_))));
        }
    }

    #[test]
    fn corruption_is_detected() {
        let t = Tensor::ones([100]);
        let entries = vec![("w", &t)];
        let none = |_: &str| None;
        let enc = encode_update(&entries, &none);
        for pos in [0usize, 6, enc.bytes.len() / 2, enc.bytes.len() - 33] {
            let mut bad = enc.bytes.clone();
            bad[pos] ^= 1;
            assert!(decode_update(&bad, &none).is_err(), "corruption at {pos} accepted");
        }
        assert!(decode_update(&enc.bytes[..enc.bytes.len() - 1], &none).is_err());
    }

    #[test]
    fn multi_entry_updates_preserve_order() {
        let mut rng = Pcg32::seeded(4);
        let tensors: BTreeMap<String, Tensor> = (0..5)
            .map(|i| (format!("layer{i}.weight"), Tensor::rand_normal([16, 16], 0.0, 1.0, &mut rng)))
            .collect();
        let entries: Vec<(&str, &Tensor)> =
            tensors.iter().map(|(n, t)| (n.as_str(), t)).collect();
        let none = |_: &str| None;
        let enc = encode_update(&entries, &none);
        let dec = decode_update(&enc.bytes, &none).unwrap();
        for ((n1, t1), (n2, t2)) in entries.iter().zip(&dec) {
            assert_eq!(*n1, n2);
            assert!(t1.bit_eq(t2));
        }
    }
}
