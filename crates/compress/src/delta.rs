//! XOR deltas between equal-shape tensors.
//!
//! XOR (rather than arithmetic subtraction) is used because it is exactly
//! invertible on the *bit patterns* — no rounding, no NaN/∞ special cases —
//! which is what mmlib's bit-exact recovery contract requires.

use mmlib_tensor::Tensor;

/// `a XOR b` as raw `u32` words. Returns `None` on shape mismatch.
pub fn xor_words(a: &Tensor, b: &Tensor) -> Option<Vec<u32>> {
    if a.shape() != b.shape() {
        return None;
    }
    Some(
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| x.to_bits() ^ y.to_bits())
            .collect(),
    )
}

/// Applies an XOR delta to `base`, reconstructing the derived tensor.
/// Returns `None` if the delta length does not match.
pub fn apply(base: &Tensor, delta: &[u32]) -> Option<Tensor> {
    if base.numel() != delta.len() {
        return None;
    }
    let data: Vec<f32> = base
        .data()
        .iter()
        .zip(delta)
        .map(|(x, d)| f32::from_bits(x.to_bits() ^ d))
        .collect();
    Tensor::from_vec(base.shape().clone(), data).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_tensor::Pcg32;

    #[test]
    fn delta_apply_round_trip() {
        let mut rng = Pcg32::seeded(1);
        let base = Tensor::rand_normal([64, 3, 3, 3], 0.0, 1.0, &mut rng);
        let mut derived = base.clone();
        for v in derived.data_mut().iter_mut().step_by(7) {
            *v += 0.001;
        }
        let delta = xor_words(&derived, &base).unwrap();
        let back = apply(&base, &delta).unwrap();
        assert!(back.bit_eq(&derived));
    }

    #[test]
    fn identical_tensors_have_zero_delta() {
        let mut rng = Pcg32::seeded(2);
        let t = Tensor::rand_normal([100], 0.0, 1.0, &mut rng);
        let delta = xor_words(&t, &t).unwrap();
        assert!(delta.iter().all(|&d| d == 0));
    }

    #[test]
    fn special_values_survive() {
        let base = Tensor::from_vec([4], vec![0.0, -0.0, f32::INFINITY, 1.0]).unwrap();
        let derived = Tensor::from_vec([4], vec![f32::NAN, 0.0, -1.5, 1.0]).unwrap();
        let delta = xor_words(&derived, &base).unwrap();
        let back = apply(&base, &delta).unwrap();
        assert!(back.bit_eq(&derived));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        assert!(xor_words(&a, &b).is_none());
        assert!(apply(&a, &[0; 3]).is_none());
    }
}
