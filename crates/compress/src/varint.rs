//! LEB128 variable-length unsigned integers.

/// Appends `value` as a LEB128 varint.
pub fn write_u64(value: u64, out: &mut Vec<u8>) {
    let mut v = value;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `input`, returning the value and
/// the number of bytes consumed, or `None` on truncation/overflow.
pub fn read_u64(input: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if shift >= 64 {
            return None; // overflow: more than 10 bytes
        }
        let payload = (byte & 0x7f) as u64;
        // The final byte must fit in the remaining bits.
        if shift == 63 && payload > 1 {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_boundary_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(v, &mut buf);
            let (back, used) = read_u64(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_u64(127, &mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        write_u64(u64::MAX, &mut buf);
        for cut in 0..buf.len() {
            assert!(read_u64(&buf[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let bad = [0x80u8; 11];
        assert!(read_u64(&bad).is_none());
    }

    #[test]
    fn reads_only_its_own_bytes() {
        let mut buf = Vec::new();
        write_u64(300, &mut buf);
        let tail_start = buf.len();
        buf.extend_from_slice(&[0xde, 0xad]);
        let (v, used) = read_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, tail_start);
    }
}
