//! Byte-plane transform for `f32` streams.
//!
//! An IEEE-754 `f32` is sign+exponent in its high bytes and mantissa in its
//! low bytes. After an XOR delta between two *related* models, high bytes
//! are mostly zero (magnitudes barely move) while low bytes stay noisy.
//! Interleaved, that structure is invisible to a run-length coder; split
//! into four planes (all byte-0s, then all byte-1s, ...), the zero-heavy
//! planes collapse.

/// Splits little-endian `f32` words into 4 byte planes, concatenated
/// `plane0 | plane1 | plane2 | plane3` (plane 3 holds sign + high exponent).
pub fn split(words: &[u32]) -> Vec<u8> {
    let n = words.len();
    let mut out = vec![0u8; n * 4];
    for (i, w) in words.iter().enumerate() {
        let bytes = w.to_le_bytes();
        out[i] = bytes[0];
        out[n + i] = bytes[1];
        out[2 * n + i] = bytes[2];
        out[3 * n + i] = bytes[3];
    }
    out
}

/// Inverse of [`split`]. Returns `None` if the length is not a multiple of 4.
pub fn merge(planes: &[u8]) -> Option<Vec<u32>> {
    if !planes.len().is_multiple_of(4) {
        return None;
    }
    let n = planes.len() / 4;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(u32::from_le_bytes([
            planes[i],
            planes[n + i],
            planes[2 * n + i],
            planes[3 * n + i],
        ]));
    }
    Some(out)
}

/// The four plane slices of a split buffer.
pub fn planes(split: &[u8]) -> Option<[&[u8]; 4]> {
    if !split.len().is_multiple_of(4) {
        return None;
    }
    let n = split.len() / 4;
    Some([&split[..n], &split[n..2 * n], &split[2 * n..3 * n], &split[3 * n..]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_merge_round_trip() {
        let words: Vec<u32> = (0..1000u32).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        assert_eq!(merge(&split(&words)).unwrap(), words);
        assert_eq!(merge(&split(&[])).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn plane3_holds_the_high_byte() {
        let words = vec![0xaabbccddu32];
        let s = split(&words);
        assert_eq!(s, vec![0xdd, 0xcc, 0xbb, 0xaa]);
        let p = planes(&s).unwrap();
        assert_eq!(p[3], &[0xaa]);
    }

    #[test]
    fn misaligned_input_is_rejected() {
        assert!(merge(&[1, 2, 3]).is_none());
        assert!(planes(&[1, 2, 3, 4, 5]).is_none());
    }

    #[test]
    fn small_deltas_concentrate_zeros_in_high_planes() {
        // Two nearby weight values: XOR touches mostly mantissa bytes.
        let a = 0.123456f32;
        let b = 0.123466f32;
        let delta = a.to_bits() ^ b.to_bits();
        let s = split(&vec![delta; 64]);
        let p = planes(&s).unwrap();
        assert!(p[3].iter().all(|&b| b == 0), "sign/exponent plane should be zero");
    }
}
