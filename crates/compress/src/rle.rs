//! Zero-run-length encoding.
//!
//! The byte planes of an XOR delta between related models are dominated by
//! zero bytes (unchanged sign/exponent bits). This codec encodes a byte
//! stream as alternating tokens:
//!
//! ```text
//! token := zero_run(varint)  literal_len(varint)  literal_bytes
//! ```
//!
//! starting with a zero run (possibly 0), repeated until the input is
//! consumed. Worst case overhead is two varint bytes per literal chunk.

use crate::varint;

/// Maximum literal chunk length (bounds worst-case token overhead).
const MAX_LITERAL: usize = 1 << 16;

/// Encodes `input` with zero-RLE.
pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 16);
    let mut pos = 0usize;
    while pos < input.len() {
        // Count zeros.
        let zero_start = pos;
        while pos < input.len() && input[pos] == 0 {
            pos += 1;
        }
        varint::write_u64((pos - zero_start) as u64, &mut out);
        // Count literals: run until the next "worthwhile" zero run (>= 4)
        // or the chunk limit, so isolated zeros don't fragment literals.
        let lit_start = pos;
        while pos < input.len() && pos - lit_start < MAX_LITERAL {
            if input[pos] == 0 {
                let run_end = input[pos..]
                    .iter()
                    .position(|&b| b != 0)
                    .map_or(input.len(), |off| pos + off);
                if run_end - pos >= 4 || run_end == input.len() {
                    break;
                }
                pos = run_end;
            } else {
                pos += 1;
            }
        }
        varint::write_u64((pos - lit_start) as u64, &mut out);
        out.extend_from_slice(&input[lit_start..pos]);
    }
    out
}

/// Decodes a zero-RLE stream produced by [`encode`].
///
/// `expected_len` bounds the output (corrupt streams cannot balloon).
pub fn decode(input: &[u8], expected_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    while pos < input.len() {
        let (zeros, used) = varint::read_u64(&input[pos..])?;
        pos += used;
        if out.len() + zeros as usize > expected_len {
            return None;
        }
        out.resize(out.len() + zeros as usize, 0);
        let (lits, used) = varint::read_u64(&input[pos..])?;
        pos += used;
        let lits = lits as usize;
        if pos + lits > input.len() || out.len() + lits > expected_len {
            return None;
        }
        out.extend_from_slice(&input[pos..pos + lits]);
        pos += lits;
    }
    (out.len() == expected_len).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let enc = encode(data);
        let dec = decode(&enc, data.len()).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn round_trips_basic_patterns() {
        round_trip(&[]);
        round_trip(&[0; 1000]);
        round_trip(&[1; 1000]);
        round_trip(&[0, 0, 0, 0, 1, 2, 3, 0, 0, 0, 0, 0, 4]);
        round_trip(&[1, 0, 2, 0, 3, 0, 4]); // isolated zeros inside literals
    }

    #[test]
    fn long_zero_runs_shrink_dramatically() {
        let mut data = vec![0u8; 100_000];
        data[50_000] = 7;
        let enc = encode(&data);
        assert!(enc.len() < 16, "encoded {} bytes", enc.len());
    }

    #[test]
    fn incompressible_data_overhead_is_bounded() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 255 + 1) as u8).collect();
        let enc = encode(&data);
        assert!(enc.len() <= data.len() + data.len() / MAX_LITERAL * 4 + 8);
    }

    #[test]
    fn corrupt_streams_do_not_balloon() {
        let enc = encode(&[0u8; 1000]);
        // Claim a gigantic zero run.
        let mut bad = Vec::new();
        crate::varint::write_u64(u64::MAX / 2, &mut bad);
        assert!(decode(&bad, 1000).is_none());
        // Truncations fail cleanly.
        for cut in 0..enc.len() {
            assert!(decode(&enc[..cut], 1000).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn wrong_expected_len_is_rejected() {
        let data = [1u8, 2, 3];
        let enc = encode(&data);
        assert!(decode(&enc, 2).is_none());
        assert!(decode(&enc, 4).is_none());
    }
}
