//! Compression substrate for the mmlib reproduction.
//!
//! The paper's parameter-update approach stores changed layers verbatim;
//! its discussion of the storage-retraining trade-off (§4.7) and of
//! ModelHub's segmented parameter archive (§5) point at the obvious next
//! step: *encode* the update instead of storing raw floats. This crate
//! implements that extension, entirely from scratch (no external
//! compression crates are in the allowed dependency set):
//!
//! * [`varint`] — LEB128 variable-length integers (framing).
//! * [`rle`] — zero-run-length encoding: long zero runs become two bytes.
//! * [`byteplane`] — splits an `f32` stream into four byte planes. After an
//!   XOR delta, sign/exponent bytes are mostly zero while mantissa bytes
//!   stay noisy, so planes compress very differently — encoding them
//!   separately is what makes the delta codec effective.
//! * [`delta`] — XOR deltas between equal-shape tensors.
//! * [`codec`] — the composed update codec:
//!   `xor-delta → byte planes → per-plane zero-RLE → framed + checksummed`,
//!   with a store-raw fallback per tensor whenever encoding would not
//!   actually shrink it (compression never loses, by construction).
//!
//! The codec is **lossless and bit-exact**, as everything in mmlib must be:
//! decoding reproduces the original tensor to the bit, including NaN
//! payloads and signed zeros. Property tests enforce this.

#![forbid(unsafe_code)]

pub mod byteplane;
pub mod codec;
pub mod delta;
pub mod rle;
pub mod varint;

pub use codec::{decode_update, encode_update, CodecError, EncodedUpdate};
