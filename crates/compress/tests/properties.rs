//! Property tests: the update codec is lossless and bit-exact on arbitrary
//! tensors (including special values), and every corruption is detected.

use mmlib_compress::{decode_update, encode_update};
use mmlib_tensor::{Pcg32, Shape, Tensor};
use proptest::prelude::*;

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    (prop::collection::vec(1usize..8, 1..4), any::<u64>(), 0u8..3).prop_map(
        |(dims, seed, kind)| {
            let shape = Shape::new(dims);
            let mut rng = Pcg32::seeded(seed);
            match kind {
                0 => Tensor::rand_normal(shape, 0.0, 1.0, &mut rng),
                1 => {
                    // Sprinkle special values.
                    let mut t = Tensor::rand_normal(shape, 0.0, 1.0, &mut rng);
                    let specials = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 0.0];
                    for (i, v) in t.data_mut().iter_mut().enumerate() {
                        if i % 3 == 0 {
                            *v = specials[i % specials.len()];
                        }
                    }
                    t
                }
                _ => Tensor::zeros(shape),
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn raw_mode_is_bit_exact(t in arb_tensor()) {
        let entries = vec![("t", &t)];
        let none = |_: &str| None;
        let enc = encode_update(&entries, &none);
        let dec = decode_update(&enc.bytes, &none).unwrap();
        prop_assert!(dec[0].1.bit_eq(&t));
    }

    #[test]
    fn delta_mode_is_bit_exact(base in arb_tensor(), noise_seed in any::<u64>()) {
        let mut derived = base.clone();
        let mut rng = Pcg32::seeded(noise_seed);
        for v in derived.data_mut().iter_mut() {
            if rng.next_f32() < 0.3 {
                *v = f32::from_bits(v.to_bits() ^ rng.next_u32() & 0xff);
            }
        }
        let entries = vec![("t", &derived)];
        let base_fn = |name: &str| (name == "t").then_some(&base);
        let enc = encode_update(&entries, &base_fn);
        let dec = decode_update(&enc.bytes, &base_fn).unwrap();
        prop_assert!(dec[0].1.bit_eq(&derived));
    }

    #[test]
    fn single_bitflips_never_decode(t in arb_tensor(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let entries = vec![("t", &t)];
        let none = |_: &str| None;
        let mut enc = encode_update(&entries, &none).bytes;
        let pos = ((enc.len() - 1) as f64 * pos_frac) as usize;
        enc[pos] ^= 1 << bit;
        prop_assert!(decode_update(&enc, &none).is_err());
    }

    #[test]
    fn identical_update_compresses_massively(t in arb_tensor()) {
        // A derived tensor equal to its base XORs to all zeros.
        if t.numel() >= 64 {
            let entries = vec![("t", &t)];
            let base_fn = |name: &str| (name == "t").then_some(&t);
            let enc = encode_update(&entries, &base_fn);
            prop_assert!(enc.bytes.len() < t.nbytes() / 4 + 96,
                "encoded {} of raw {}", enc.bytes.len(), t.nbytes());
        }
    }
}
