//! `timing` — one-shot cost profile of the substrate per architecture:
//! init, forward, backward, state-dict clone, layer hashing, serialization.
//! Useful for sizing harness configurations on a new machine.

use std::time::Instant;

use mmlib_model::{ArchId, Ctx, Model};
use mmlib_tensor::{ExecMode, Pcg32, Tensor};

fn main() {
    for arch in ArchId::all() {
        let t = Instant::now();
        let mut m = Model::new_initialized(arch, 0);
        let init = t.elapsed();
        let mut rng = Pcg32::seeded(1);
        let x = Tensor::rand_normal([2, 3, arch.min_resolution(), arch.min_resolution()], 0.0, 1.0, &mut rng);
        let mut trng = Pcg32::seeded(2);
        let mut ctx = Ctx::train(&mut trng, ExecMode::Deterministic);
        let t = Instant::now();
        let y = m.forward(x, &mut ctx);
        let fwd = t.elapsed();
        let t = Instant::now();
        m.backward(y, &mut ctx);
        let bwd = t.elapsed();
        let t = Instant::now();
        let sd = m.state_dict();
        let sdt = t.elapsed();
        let t = Instant::now();
        let _ = mmlib_core::merkle::MerkleTree::from_model(&m);
        let hash = t.elapsed();
        let t = Instant::now();
        let bytes = mmlib_tensor::ser::state_to_bytes(
            sd.iter().map(|(n, t)| (n.as_str(), t)).collect::<Vec<_>>(),
        );
        let ser = t.elapsed();
        println!(
            "{:12} init={init:<12.1?} fwd={fwd:<10.1?} bwd={bwd:<10.1?} \
             state_dict={sdt:<10.1?} hash={hash:<10.1?} ser={ser:<10.1?} ({} MB)",
            arch.name(),
            bytes.len() / 1_000_000
        );
    }
}
