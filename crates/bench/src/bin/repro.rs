//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p mmlib-bench --bin repro -- all
//! cargo run --release -p mmlib-bench --bin repro -- fig7 fig10 --runs 3
//! cargo run --release -p mmlib-bench --bin repro -- table2
//! ```
//!
//! Experiments: `table1 table2 table3 fig2 fig4 fig7 fig8 fig9 fig10 fig11
//! fig12 fig13 fig14 fig15 headline` or `all`.
//!
//! Flags: `--scale <f>` (dataset byte-size scale for standard flows,
//! default 1.0 = the paper's sizes), `--dist-scale <f>` (DIST-N flows,
//! default 1/16), `--runs <n>` (repetitions for timed experiments,
//! default 1; the paper uses 5), `--fast` (smaller stand-ins for the most
//! expensive experiments), `--json [path]` (skip the tables/figures and
//! instead run the per-approach phase benchmark, writing TTS/TTR/storage
//! phase breakdowns to `path`, default `BENCH_PR4.json`; exits nonzero if
//! any instrumented phase reports zero samples), `--baseline <path>`
//! (with `--json`: additionally gate the fresh document against a frozen
//! baseline — PUA `hash` must be ≥2x faster, a BA save must issue at most
//! 12/1.5 = 8 durability sync ops (the machine-invariant form of the ≥1.5x
//! write win), and every baseline phase must still report samples),
//! `--lineage-json [path]`
//! (run the TTR-vs-chain-depth benchmark: a depth-64 delta chain before
//! and after `lineage compact`, with a fresh depth-8 chain as control,
//! default `BENCH_PR6.json`; exits nonzero if compacted recovery is not
//! byte-identical or its TTR exceeds 1.5x the control).

use std::time::{Duration, Instant};

use mmlib_bench::{dist_flow_kind, mb, run_flow_runs, standard_flow_config, HarnessConfig};
use mmlib_core::meta::{ApproachKind, ModelRelation};
use mmlib_core::merkle::MerkleTree;
use mmlib_core::{RecoverOptions, SaveService};
use mmlib_data::loader::LoaderConfig;
use mmlib_data::{DataLoader, Dataset, DatasetId};
use mmlib_dist::flow::{FlowConfig, FlowKind};
use mmlib_dist::metrics;
use mmlib_model::{ArchId, Model};
use mmlib_store::ModelStorage;
use mmlib_tensor::hash::sha256;
use mmlib_tensor::{ops, ExecMode, Pcg32};
use mmlib_train::{timed_train, Sgd, SgdConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = HarnessConfig::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut json_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut lineage_json_out: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => config.scale = take_f64(&mut iter, "--scale"),
            "--dist-scale" => config.dist_scale = take_f64(&mut iter, "--dist-scale"),
            "--runs" => config.runs = take_f64(&mut iter, "--runs") as usize,
            "--fast" => config.fast = true,
            "--json" => {
                json_out = Some(match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap().clone(),
                    _ => "BENCH_PR4.json".to_string(),
                });
            }
            "--baseline" => {
                baseline = Some(iter.next().unwrap_or_else(|| {
                    eprintln!("--baseline needs a path argument");
                    std::process::exit(2);
                }).clone());
            }
            "--lineage-json" => {
                lineage_json_out = Some(match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap().clone(),
                    _ => "BENCH_PR6.json".to_string(),
                });
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            exp => experiments.push(exp.to_string()),
        }
    }
    if let Some(path) = lineage_json_out {
        return lineage_json_bench(&config, &path);
    }
    if let Some(path) = json_out {
        return json_bench(&config, &path, baseline.as_deref());
    }
    if baseline.is_some() {
        eprintln!("--baseline only applies together with --json");
        std::process::exit(2);
    }
    if experiments.is_empty() {
        experiments.push("all".into());
    }
    let all = [
        "table1", "table2", "table3", "fig2", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "headline",
    ];
    let selected: Vec<&str> = if experiments.iter().any(|e| e == "all") {
        all.to_vec()
    } else {
        experiments.iter().map(|s| s.as_str()).collect()
    };

    println!("mmlib paper reproduction harness");
    println!(
        "config: scale={} dist_scale={} runs={} fast={}\n",
        config.scale, config.dist_scale, config.runs, config.fast
    );
    for exp in selected {
        let start = Instant::now();
        match exp {
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(),
            "fig2" => fig2(),
            "fig4" => fig4(),
            "fig7" => fig7(&config),
            "fig8" => fig8(),
            "fig9" => fig9(&config),
            "fig10" => fig10_11(&config, false),
            "fig11" => fig10_11(&config, true),
            "fig12" => fig12(&config),
            "fig13" => fig13(&config),
            "fig14" => fig14_15(&config, false),
            "fig15" => fig14_15(&config, true),
            "headline" => headline(&config),
            other => {
                eprintln!("unknown experiment {other}");
                std::process::exit(2);
            }
        }
        println!("[{exp} done in {:.1?}]\n", start.elapsed());
    }
}

/// `repro --json`: the per-approach phase benchmark. One standard flow per
/// approach at the pinned seed, written as JSON; a phase that recorded zero
/// samples fails the run (it means an instrumentation path went dark). With
/// `--baseline`, the fresh document is additionally gated against the frozen
/// baseline's phase timings via [`mmlib_bench::phase_gate`].
fn json_bench(config: &HarnessConfig, path: &str, baseline: Option<&str>) {
    let start = Instant::now();
    let (doc, mut problems) = mmlib_bench::phase_benchmark(config, 42);
    let rendered = serde_json::to_string_pretty(&doc).expect("render benchmark JSON");
    std::fs::write(path, rendered + "\n").expect("write benchmark JSON");
    println!("wrote {path} in {:.1?}", start.elapsed());
    if let Some(baseline_path) = baseline {
        let raw = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let frozen: serde_json::Value = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("parse baseline {baseline_path}: {e}"));
        let gate = mmlib_bench::phase_gate(&doc, &frozen);
        if gate.is_empty() {
            println!("phase gate vs {baseline_path}: pass");
        }
        problems.extend(gate);
    }
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("phase coverage regression: {p}");
        }
        std::process::exit(3);
    }
}

fn lineage_json_bench(config: &HarnessConfig, path: &str) {
    let start = Instant::now();
    let (doc, problems) = mmlib_bench::lineage_depth_benchmark(config, 42);
    let rendered = serde_json::to_string_pretty(&doc).expect("render lineage benchmark JSON");
    std::fs::write(path, rendered + "\n").expect("write lineage benchmark JSON");
    println!("wrote {path} in {:.1?}", start.elapsed());
    if !problems.is_empty() {
        for p in &problems {
            eprintln!("lineage benchmark regression: {p}");
        }
        std::process::exit(3);
    }
}

fn take_f64(iter: &mut std::iter::Peekable<std::slice::Iter<'_, String>>, flag: &str) -> f64 {
    iter.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

fn table1() {
    println!("== Table 1: datasets ==");
    println!("{:<12} {:>8} {:>10} {:>9}", "SHORT NAME", "IMAGES", "SIZE", "USE CASE");
    for id in DatasetId::all() {
        println!(
            "{:<12} {:>8} {:>8.1} MB {:>8}",
            id.short_name(),
            id.paper_images(),
            mb(id.paper_bytes()),
            id.paper_use_case()
        );
    }
}

fn table2() {
    println!("== Table 2: model architectures ==");
    println!(
        "{:<13} {:>12} {:>14} {:>10}  (paper: #params / part. / size)",
        "NAME", "#PARAMS", "PART. UPDATED", "SIZE"
    );
    for arch in ArchId::all() {
        let mut model = Model::new_initialized(arch, 0);
        let total = model.param_count();
        model.set_classifier_only_trainable();
        let partial = model.trainable_param_count();
        let size = model.param_count() * 4; // parameter bytes, as in the paper
        println!(
            "{:<13} {:>12} {:>14} {:>7.1} MB  ({} / {} / —)",
            arch.name(),
            total,
            partial,
            mb(size),
            arch.paper_param_count(),
            arch.paper_partial_param_count(),
        );
        assert_eq!(total, arch.paper_param_count());
        assert_eq!(partial, arch.paper_partial_param_count());
    }
    println!("(counts match the paper exactly; size = 4 bytes x params)");
}

fn table3() {
    println!("== Table 3: evaluation flows ==");
    println!("{:<10} {:>7} {:>8}", "NAME", "#NODES", "#MODELS");
    for kind in FlowKind::all() {
        println!("{:<10} {:>7} {:>8}", kind.name(), kind.nodes(), kind.total_models());
    }
}

// ---------------------------------------------------------------------------
// Fig. 2 — floating-point reduction order
// ---------------------------------------------------------------------------

fn fig2() {
    println!("== Fig. 2: serial vs parallel dot product ==");
    let mut rng = Pcg32::seeded(2);
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let a: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let serial = ops::dot_serial(&a, &b);
        let parallel = ops::dot_pairwise(&a, &b);
        println!(
            "n={n:>8}: serial={serial:>13.6} parallel={parallel:>13.6} |diff|={:>9.3e} bit-equal={}",
            (serial - parallel).abs(),
            serial.to_bits() == parallel.to_bits()
        );
    }
}

// ---------------------------------------------------------------------------
// Fig. 4 — Merkle tree comparison counts
// ---------------------------------------------------------------------------

fn fig4() {
    println!("== Fig. 4 / §3.2: Merkle-tree comparisons to find 2 changed trailing layers ==");
    println!("{:>7} {:>14} {:>12}  paper", "layers", "merkle cmps", "naive cmps");
    for (n, paper) in [(8usize, 7u64), (64, 13), (128, 15)] {
        let base: Vec<(String, _)> =
            (0..n).map(|i| (format!("layer{i}"), sha256(format!("v{i}").as_bytes()))).collect();
        let mut changed = base.clone();
        for leaf in changed.iter_mut().skip(n - 2) {
            leaf.1 = sha256(format!("changed-{}", leaf.0).as_bytes());
        }
        let ta = MerkleTree::from_leaves(base);
        let tb = MerkleTree::from_leaves(changed);
        let diff = ta.diff(&tb);
        let naive = ta.diff_naive(&tb);
        println!("{n:>7} {:>14} {:>12}  {paper}", diff.comparisons, naive.comparisons);
        assert_eq!(diff.comparisons, paper);
    }
    println!("\nreal architectures (classifier-layer-only change):");
    for arch in [ArchId::MobileNetV2, ArchId::ResNet18, ArchId::ResNet152] {
        let mut model = Model::new_initialized(arch, 1);
        let before = MerkleTree::from_model(&model);
        // Touch one classifier parameter.
        let prefix = arch.classifier_prefix();
        model.visit_trainable_mut(&mut |path, param, _| {
            if path.starts_with(prefix) {
                let d = param.data_mut();
                d[0] += 1.0;
            }
        });
        let after = MerkleTree::from_model(&model);
        let diff = before.diff(&after);
        println!(
            "  {:<13} {:>4} layers: merkle {:>3} cmps vs naive {:>4}, changed: {:?}",
            arch.name(),
            before.leaf_count(),
            diff.comparisons,
            before.leaf_count(),
            diff.changed
        );
    }
}

// ---------------------------------------------------------------------------
// Fig. 7 — storage consumption across use cases and approaches
// ---------------------------------------------------------------------------

fn fig7(config: &HarnessConfig) {
    println!("== Fig. 7: storage per model (MB) across use cases, CF-512, scale={} ==", config.scale);
    let archs = [ArchId::MobileNetV2, ArchId::ResNet152];
    let relations = [ModelRelation::FullyUpdated, ModelRelation::PartiallyUpdated];
    for arch in archs {
        for relation in relations {
            storage_panel(config, arch, relation, DatasetId::CocoFood512);
        }
    }
}

fn storage_panel(config: &HarnessConfig, arch: ArchId, relation: ModelRelation, dataset: DatasetId) {
    storage_panel_for(config, arch, relation, dataset, &ApproachKind::all())
}

fn storage_panel_for(
    config: &HarnessConfig,
    arch: ArchId,
    relation: ModelRelation,
    dataset: DatasetId,
    approaches: &[ApproachKind],
) {
    println!("\n-- {} / {:?} / {} --", arch.name(), relation, dataset.short_name());
    print!("{:<10}", "use case");
    for a in approaches {
        print!(" {:>12}", a.abbrev());
    }
    println!();
    let mut series = Vec::new();
    for &approach in approaches {
        let flow = standard_flow_config(approach, arch, relation, dataset, config.scale, false, 7);
        let result = mmlib_bench::run_flow_tmp(&flow);
        series.push(metrics::storage_series(&result.saves));
    }
    let labels: Vec<String> = series[0].entries().iter().map(|(l, _)| l.clone()).collect();
    for label in &labels {
        if label == "U2" {
            // The paper excludes U2 from the comparison plots (§4.1); print
            // it anyway, marked, for completeness.
            print!("{:<10}", "U2*");
        } else {
            print!("{label:<10}");
        }
        for s in &series {
            print!(" {:>12.3}", s.get(label).unwrap_or(f64::NAN) / 1e6);
        }
        println!();
    }
}

// ---------------------------------------------------------------------------
// Fig. 8 — baseline storage and #params per architecture
// ---------------------------------------------------------------------------

fn fig8() {
    println!("== Fig. 8: baseline storage and parameter count per architecture ==");
    println!("{:<13} {:>12} {:>14}", "architecture", "#params", "BA storage");
    let dir = tempfile::tempdir().unwrap();
    let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
    for arch in ArchId::all() {
        let model = Model::new_initialized(arch, 0);
        let before = svc.storage().bytes_written();
        svc.save_full(&model, None, "initial").unwrap();
        let bytes = svc.storage().bytes_written() - before;
        println!("{:<13} {:>12} {:>11.1} MB", arch.name(), model.param_count(), mb(bytes));
    }
}

// ---------------------------------------------------------------------------
// Fig. 9 — MPA storage across datasets
// ---------------------------------------------------------------------------

fn fig9(config: &HarnessConfig) {
    println!("== Fig. 9: MPA storage across datasets (MB), scale={} ==", config.scale);
    for arch in [ArchId::MobileNetV2, ArchId::ResNet152] {
        for dataset in [DatasetId::CocoFood512, DatasetId::CocoOutdoor512] {
            storage_panel_for(
                config,
                arch,
                ModelRelation::FullyUpdated,
                dataset,
                &[ApproachKind::Provenance],
            );
        }
    }
    println!(
        "\n(CF-512 is {:.1} MB vs CO-512 {:.1} MB at scale 1; the per-U3 storage difference \
         tracks the dataset-size difference, not the architecture)",
        mb(DatasetId::CocoFood512.paper_bytes()),
        mb(DatasetId::CocoOutdoor512.paper_bytes())
    );
}

// ---------------------------------------------------------------------------
// Figs. 10 & 11 — TTS and TTR across approaches
// ---------------------------------------------------------------------------

fn fig10_11(config: &HarnessConfig, recover: bool) {
    let what = if recover { "Fig. 11: median TTR" } else { "Fig. 10: median TTS" };
    println!("== {what} (ms) across use cases, CO-512, runs={} ==", config.runs);
    let archs = if config.fast {
        vec![ArchId::MobileNetV2]
    } else {
        vec![ArchId::MobileNetV2, ArchId::ResNet152]
    };
    for arch in archs {
        for relation in [ModelRelation::FullyUpdated, ModelRelation::PartiallyUpdated] {
            println!("\n-- {} / {:?} --", arch.name(), relation);
            print!("{:<10}", "use case");
            for a in ApproachKind::all() {
                print!(" {:>12}", a.abbrev());
            }
            if recover {
                print!("  {:>10}", "PUA depth");
            }
            println!();
            let mut tts_series = Vec::new();
            let mut ttr_series = Vec::new();
            let mut pua_depths: Vec<(String, u32)> = Vec::new();
            for approach in ApproachKind::all() {
                let flow = standard_flow_config(
                    approach,
                    arch,
                    relation,
                    DatasetId::CocoOutdoor512,
                    config.scale,
                    recover,
                    11,
                );
                let result = run_flow_runs(&flow, config.runs);
                tts_series.push(metrics::tts_series(&result.saves));
                ttr_series.push(metrics::ttr_series(&result.recovers));
                if approach == ApproachKind::ParamUpdate && recover {
                    pua_depths = result
                        .recovers
                        .iter()
                        .map(|r| (r.use_case.clone(), r.recovered_bases))
                        .collect();
                }
            }
            let series = if recover { &ttr_series } else { &tts_series };
            let labels: Vec<String> = series[0].entries().iter().map(|(l, _)| l.clone()).collect();
            for label in &labels {
                print!("{label:<10}");
                for s in series {
                    print!(" {:>12.1}", s.get(label).unwrap_or(f64::NAN));
                }
                if recover {
                    if let Some((_, d)) = pua_depths.iter().find(|(l, _)| l == label) {
                        print!("  {d:>10}");
                    }
                }
                println!();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 12 — baseline TTR breakdown per architecture
// ---------------------------------------------------------------------------

fn fig12(config: &HarnessConfig) {
    println!("== Fig. 12: baseline TTR breakdown for U3-1-3 per architecture (ms) ==");
    println!(
        "{:<13} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "architecture", "load", "recover", "verify", "(check env)", "total*"
    );
    for arch in ArchId::all() {
        let mut samples: Vec<mmlib_core::RecoverBreakdown> = Vec::new();
        for run in 0..config.runs.max(1) {
            let dir = tempfile::tempdir().unwrap();
            let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
            let mut model = Model::new_initialized(arch, 20 + run as u64);
            model.set_fully_trainable();
            let mut base = svc.save_full(&model, None, "initial").unwrap();
            // Three partial-update iterations of U3 (saved as BA snapshots).
            let mut target = base.clone();
            for n in 0..3u64 {
                model.set_classifier_only_trainable();
                perturb_classifier(&mut model, n);
                target = svc.save_full(&model, Some(&base), "partially_updated").unwrap();
                base = target.clone();
            }
            let rec = svc.recover(&target, RecoverOptions::default()).unwrap();
            samples.push(rec.breakdown);
        }
        let med = |f: &dyn Fn(&mmlib_core::RecoverBreakdown) -> Duration| {
            metrics::median_duration(samples.iter().map(f).collect())
        };
        let load = med(&|b| b.load);
        let recover = med(&|b| b.recover);
        let verify = med(&|b| b.verify);
        let check_env = med(&|b| b.check_env);
        println!(
            "{:<13} {:>9.1} {:>9.1} {:>9.1} {:>11.1} {:>9.1}",
            arch.name(),
            load.as_secs_f64() * 1e3,
            recover.as_secs_f64() * 1e3,
            verify.as_secs_f64() * 1e3,
            check_env.as_secs_f64() * 1e3,
            (load + recover + verify).as_secs_f64() * 1e3,
        );
    }
    println!("(*total excludes the constant check-env step, as in the paper's figure)");
}

/// Nudges the classifier so each "training" yields a distinct model without
/// paying for a real training run (fig12 measures recovery, not training).
fn perturb_classifier(model: &mut Model, salt: u64) {
    let prefix = model.arch.classifier_prefix();
    model.visit_trainable_mut(&mut |path, param, _| {
        if path.starts_with(prefix) {
            for (i, v) in param.data_mut().iter_mut().enumerate() {
                *v += ((i as u64 ^ salt) % 7) as f32 * 1e-4;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Fig. 13 — deterministic vs non-deterministic training
// ---------------------------------------------------------------------------

fn fig13(config: &HarnessConfig) {
    println!("== Fig. 13: deterministic vs parallel training times (s), CO-512 ==");
    println!(
        "{:<11} {:<15} {:>10} {:>10} {:>10} {:>10}",
        "model", "mode", "data", "forward", "backward", "total"
    );
    let batches = if config.fast { 2 } else { 4 };
    for arch in [ArchId::ResNet18, ArchId::ResNet50, ArchId::ResNet152] {
        for mode in [ExecMode::Deterministic, ExecMode::Parallel] {
            let mut samples = Vec::new();
            for run in 0..config.runs.max(1) {
                let mut model = Model::new_initialized(arch, 30 + run as u64);
                model.set_fully_trainable();
                let loader = DataLoader::new(
                    Dataset::new(DatasetId::CocoOutdoor512, config.dist_scale),
                    LoaderConfig {
                        batch_size: 8,
                        resolution: 32,
                        seed: run as u64,
                        max_images: Some(8 * batches),
                        ..Default::default()
                    },
                );
                let mut sgd = Sgd::new(SgdConfig::default());
                let t = timed_train(&mut model, &loader, &mut sgd, 1, Some(batches), 1, mode);
                samples.push(t);
            }
            let med = |f: &dyn Fn(&mmlib_train::TrainTimings) -> Duration| {
                metrics::median_duration(samples.iter().map(f).collect())
            };
            let (d, f, b) = (med(&|t| t.data_load), med(&|t| t.forward), med(&|t| t.backward));
            println!(
                "{:<11} {:<15} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                arch.name(),
                format!("{mode:?}"),
                d.as_secs_f64(),
                f.as_secs_f64(),
                b.as_secs_f64(),
                (d + f + b).as_secs_f64()
            );
        }
    }
    println!("(1 epoch x {batches} batches of 8 at 32x32; the paper's relative det/non-det slowdown is per-batch constant)");
}

// ---------------------------------------------------------------------------
// Figs. 14 & 15 — DIST-20 TTS / TTR
// ---------------------------------------------------------------------------

fn fig14_15(config: &HarnessConfig, recover: bool) {
    let kind = dist_flow_kind(config.fast);
    let what = if recover { "Fig. 15: median TTR" } else { "Fig. 14: median TTS" };
    println!(
        "== {what} (ms) on {} (fully updated MobileNetV2, CO-512, dist_scale={}) ==",
        kind.name(),
        config.dist_scale
    );
    print!("{:<10}", "use case");
    for a in ApproachKind::all() {
        print!(" {:>12}", a.abbrev());
    }
    println!();
    let mut series = Vec::new();
    for approach in ApproachKind::all() {
        let mut flow: FlowConfig = standard_flow_config(
            approach,
            ArchId::MobileNetV2,
            ModelRelation::FullyUpdated,
            DatasetId::CocoOutdoor512,
            config.dist_scale,
            recover,
            13,
        );
        flow.kind = kind;
        let result = mmlib_bench::run_flow_tmp(&flow);
        series.push(if recover {
            metrics::ttr_series(&result.recovers)
        } else {
            metrics::tts_series(&result.saves)
        });
    }
    let labels: Vec<String> = series[0].entries().iter().map(|(l, _)| l.clone()).collect();
    for label in &labels {
        print!("{label:<10}");
        for s in &series {
            print!(" {:>12.1}", s.get(label).unwrap_or(f64::NAN));
        }
        println!();
    }
    println!("(values are medians over all {} nodes per use-case iteration)", kind.nodes());
}

// ---------------------------------------------------------------------------
// Headline numbers (§4.2/§4.3 summary percentages)
// ---------------------------------------------------------------------------

fn headline(config: &HarnessConfig) {
    println!("== Headline: best-case savings vs the baseline ==");
    // Storage: partially updated ResNet-152 (paper: PUA -95.6%) and fully
    // updated ResNet-152 (paper: MPA -70.0%). The paper's 70% corresponds
    // to the CO-512 dataset (71.6 MB vs the 241.7 MB snapshot).
    let pct = |base: f64, other: f64| (1.0 - other / base) * 100.0;

    let panel = |relation: ModelRelation| -> Vec<f64> {
        ApproachKind::all()
            .into_iter()
            .map(|approach| {
                let flow = standard_flow_config(
                    approach,
                    ArchId::ResNet152,
                    relation,
                    DatasetId::CocoOutdoor512,
                    config.scale,
                    false,
                    17,
                );
                let result = mmlib_bench::run_flow_tmp(&flow);
                let series = metrics::storage_series(&result.saves);
                series.get("U3-1-2").unwrap_or(f64::NAN)
            })
            .collect()
    };

    let partial = panel(ModelRelation::PartiallyUpdated);
    println!(
        "storage, partial ResNet-152 U3: BA {:.1} MB, PUA {:.1} MB -> PUA saves {:.1}% (paper: 95.6%)",
        partial[0] / 1e6,
        partial[1] / 1e6,
        pct(partial[0], partial[1])
    );
    let full = panel(ModelRelation::FullyUpdated);
    println!(
        "storage, full ResNet-152 U3:    BA {:.1} MB, MPA {:.1} MB -> MPA saves {:.1}% (paper: 70.0%)",
        full[0] / 1e6,
        full[2] / 1e6,
        pct(full[0], full[2])
    );
    println!("(TTS percentages depend on machine speed; regenerate via fig10 and compare shapes)");
}
