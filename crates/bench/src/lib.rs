//! Shared experiment plumbing for the mmlib benchmark harness.
//!
//! The `repro` binary (`src/bin/repro.rs`) regenerates every table and
//! figure of the paper's evaluation; the criterion benches under `benches/`
//! measure the micro costs (hashing, Merkle diffing, serialization,
//! per-approach save/recover). Both build on the helpers here.

use mmlib_core::meta::{ApproachKind, ModelRelation};
use mmlib_dist::flow::{run_flow, FlowConfig, FlowKind, FlowResult};
use mmlib_model::ArchId;

/// Global knobs for a harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Byte-size scale for datasets in the standard-flow experiments.
    /// 1.0 preserves the paper's dataset:model size ratios exactly.
    pub scale: f64,
    /// Byte-size scale for the DIST-N experiments (402 provenance saves at
    /// full scale would write tens of GB; the paper's *trends* are
    /// scale-free).
    pub dist_scale: f64,
    /// Runs per timed experiment (medians are taken across runs × nodes).
    pub runs: usize,
    /// Fast mode: smaller architectures / flows where the full version is
    /// expensive, for smoke-testing the harness itself.
    pub fast: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { scale: 1.0, dist_scale: 1.0 / 16.0, runs: 1, fast: false }
    }
}

/// Builds the standard-flow configuration used by Figs. 7 and 9–11.
pub fn standard_flow_config(
    approach: ApproachKind,
    arch: ArchId,
    relation: ModelRelation,
    u3_dataset: mmlib_data::DatasetId,
    scale: f64,
    recover_all: bool,
    seed: u64,
) -> FlowConfig {
    let mut config = FlowConfig::standard(approach, arch, relation);
    config.u3_dataset = u3_dataset;
    config.dataset_scale = scale;
    config.recover_all = recover_all;
    config.seed = seed;
    // Training resolution does not enter any storage or per-byte cost; use
    // the smallest resolution each stride pyramid supports (GoogLeNet's
    // pooling chain needs 32).
    config.train.resolution = if arch == ArchId::GoogLeNet { 32 } else { 16 };
    config
}

/// Runs a flow in a fresh temp directory (dropped afterwards, so repeated
/// experiments do not accumulate tens of GB on disk).
pub fn run_flow_tmp(config: &FlowConfig) -> FlowResult {
    let dir = tempfile::tempdir().expect("temp dir for flow storage");
    run_flow(config, dir.path())
}

/// Runs a flow `runs` times (varying the seed) and concatenates results for
/// cross-run medians, as the paper does across its five repetitions.
pub fn run_flow_runs(config: &FlowConfig, runs: usize) -> FlowResult {
    let results: Vec<FlowResult> = (0..runs)
        .map(|r| {
            let mut c = config.clone();
            c.seed = config.seed ^ ((r as u64) << 48);
            run_flow_tmp(&c)
        })
        .collect();
    mmlib_dist::metrics::concat_results(&results)
}

/// Formats bytes as decimal megabytes (the paper's unit).
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

/// Formats a flow kind name for DIST experiments respecting fast mode.
pub fn dist_flow_kind(fast: bool) -> FlowKind {
    if fast {
        FlowKind::Dist5
    } else {
        FlowKind::Dist20
    }
}
