//! Shared experiment plumbing for the mmlib benchmark harness.
//!
//! The `repro` binary (`src/bin/repro.rs`) regenerates every table and
//! figure of the paper's evaluation; the criterion benches under `benches/`
//! measure the micro costs (hashing, Merkle diffing, serialization,
//! per-approach save/recover). Both build on the helpers here.

#![forbid(unsafe_code)]

use mmlib_core::meta::{ApproachKind, ModelRelation};
use mmlib_dist::flow::{run_flow, FlowConfig, FlowKind, FlowResult};
use mmlib_model::ArchId;
use mmlib_store::ModelStorage;

/// Global knobs for a harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Byte-size scale for datasets in the standard-flow experiments.
    /// 1.0 preserves the paper's dataset:model size ratios exactly.
    pub scale: f64,
    /// Byte-size scale for the DIST-N experiments (402 provenance saves at
    /// full scale would write tens of GB; the paper's *trends* are
    /// scale-free).
    pub dist_scale: f64,
    /// Runs per timed experiment (medians are taken across runs × nodes).
    pub runs: usize,
    /// Fast mode: smaller architectures / flows where the full version is
    /// expensive, for smoke-testing the harness itself.
    pub fast: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { scale: 1.0, dist_scale: 1.0 / 16.0, runs: 1, fast: false }
    }
}

/// Builds the standard-flow configuration used by Figs. 7 and 9–11.
pub fn standard_flow_config(
    approach: ApproachKind,
    arch: ArchId,
    relation: ModelRelation,
    u3_dataset: mmlib_data::DatasetId,
    scale: f64,
    recover_all: bool,
    seed: u64,
) -> FlowConfig {
    let mut config = FlowConfig::standard(approach, arch, relation);
    config.u3_dataset = u3_dataset;
    config.dataset_scale = scale;
    config.recover_all = recover_all;
    config.seed = seed;
    // Training resolution does not enter any storage or per-byte cost; use
    // the smallest resolution each stride pyramid supports (GoogLeNet's
    // pooling chain needs 32).
    config.train.resolution = if arch == ArchId::GoogLeNet { 32 } else { 16 };
    config
}

/// Runs a flow in a fresh temp directory (dropped afterwards, so repeated
/// experiments do not accumulate tens of GB on disk).
pub fn run_flow_tmp(config: &FlowConfig) -> FlowResult {
    let dir = tempfile::tempdir().expect("temp dir for flow storage");
    run_flow(config, dir.path())
}

/// Runs a flow `runs` times (varying the seed) and concatenates results for
/// cross-run medians, as the paper does across its five repetitions.
pub fn run_flow_runs(config: &FlowConfig, runs: usize) -> FlowResult {
    let results: Vec<FlowResult> = (0..runs)
        .map(|r| {
            let mut c = config.clone();
            c.seed = config.seed ^ ((r as u64) << 48);
            run_flow_tmp(&c)
        })
        .collect();
    mmlib_dist::metrics::concat_results(&results)
}

/// Formats bytes as decimal megabytes (the paper's unit).
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

/// The save phases each approach is expected to exercise during a standard
/// flow (its U1 is always a full snapshot, so the baseline's phases appear
/// in every approach's flow; listed here are the phases of the approach's
/// own U2/U3 saves plus that shared snapshot).
pub fn expected_save_phases(approach: ApproachKind) -> &'static [&'static str] {
    match approach {
        ApproachKind::Baseline => &["serialize", "hash", "write"],
        ApproachKind::ParamUpdate => &["diff", "hash", "serialize", "write"],
        ApproachKind::Provenance => &["pack", "hash", "write"],
    }
}

/// Recover phases every recovery reports (zero-duration phases included).
pub const EXPECTED_RECOVER_PHASES: [&str; 4] = ["fetch", "rebuild", "check_env", "verify"];

/// Aggregates phase breakdowns into `{phase: {seconds, samples}}`, where
/// `samples` counts the records whose breakdown contains the phase.
fn phase_stats<'a>(
    breakdowns: impl Iterator<Item = &'a mmlib_obs::PhaseBreakdown>,
) -> serde_json::Value {
    let mut acc: Vec<(String, f64, u64)> = Vec::new();
    for b in breakdowns {
        for (phase, d) in b.entries() {
            match acc.iter_mut().find(|(p, _, _)| p == phase) {
                Some(slot) => {
                    slot.1 += d.as_secs_f64();
                    slot.2 += 1;
                }
                None => acc.push((phase.to_string(), d.as_secs_f64(), 1)),
            }
        }
    }
    let mut map = serde_json::Map::new();
    for (phase, seconds, samples) in acc {
        map.insert(
            phase,
            serde_json::json!({"seconds": seconds, "samples": samples}),
        );
    }
    serde_json::Value::Object(map)
}

/// Runs the standard flow once per approach at a pinned scale/seed and
/// renders per-approach TTS/TTR/storage with per-phase breakdowns as JSON
/// (the `repro --json` payload, written to `BENCH_PR4.json`).
///
/// Returns the document and the list of problems — instrumented phases that
/// reported zero samples — so callers can fail the run on regressions.
pub fn phase_benchmark(config: &HarnessConfig, seed: u64) -> (serde_json::Value, Vec<String>) {
    phase_benchmark_with_arch(config, seed, ArchId::MobileNetV2)
}

/// [`phase_benchmark`] over an explicit architecture. The committed bench
/// documents always use MobileNetV2; tests use `TinyCnn` so structural
/// checks (phase coverage, JSON shape) stay in the millisecond range.
pub fn phase_benchmark_with_arch(
    config: &HarnessConfig,
    seed: u64,
    arch: ArchId,
) -> (serde_json::Value, Vec<String>) {
    let mut approaches = serde_json::Map::new();
    let mut problems = Vec::new();
    for approach in ApproachKind::all() {
        let flow = standard_flow_config(
            approach,
            arch,
            ModelRelation::PartiallyUpdated,
            mmlib_data::DatasetId::CocoFood512,
            config.scale,
            true,
            seed,
        );
        let result = run_flow_runs(&flow, config.runs);
        let tts = mmlib_dist::metrics::median_duration(
            result.saves.iter().map(|s| s.tts).collect(),
        );
        let ttr = mmlib_dist::metrics::median_duration(
            result.recovers.iter().map(|r| r.ttr).collect(),
        );
        let storage = mmlib_dist::metrics::median_u64(
            result.saves.iter().map(|s| s.storage_bytes).collect(),
        );
        let sync_ops = mmlib_dist::metrics::median_u64(
            result.saves.iter().map(|s| s.sync_ops).collect(),
        );
        let save_phases = phase_stats(result.saves.iter().map(|s| &s.phases));
        let recover_phases = phase_stats(result.recovers.iter().map(|r| &r.phases));

        for &phase in expected_save_phases(approach) {
            if save_phases[phase]["samples"].as_u64().unwrap_or(0) == 0 {
                problems.push(format!("{}: save phase {phase:?} has zero samples", approach.abbrev()));
            }
        }
        for phase in EXPECTED_RECOVER_PHASES {
            if recover_phases[phase]["samples"].as_u64().unwrap_or(0) == 0 {
                problems.push(format!("{}: recover phase {phase:?} has zero samples", approach.abbrev()));
            }
        }

        approaches.insert(
            approach.abbrev().to_string(),
            serde_json::json!({
                "saves": result.saves.len(),
                "recovers": result.recovers.len(),
                "tts_ms_median": tts.as_secs_f64() * 1e3,
                "ttr_ms_median": ttr.as_secs_f64() * 1e3,
                "storage_bytes_median": storage,
                "save_sync_ops_median": sync_ops,
                "save_phases": save_phases,
                "recover_phases": recover_phases,
            }),
        );
    }
    let doc = serde_json::json!({
        "config": {
            "scale": config.scale,
            "runs": config.runs,
            "fast": config.fast,
            "seed": seed,
            "arch": arch.name(),
            "flow": "STANDARD",
            "relation": "PartiallyUpdated",
        },
        "approaches": serde_json::Value::Object(approaches),
    });
    (doc, problems)
}

/// Minimum speedup of the PUA `hash` save phase over the frozen baseline
/// document (the incremental-Merkle cache re-hashes only changed layers).
/// Hashing is CPU-bound, so its wall clock is stable enough to gate.
pub const GATE_PUA_HASH_SPEEDUP: f64 = 2.0;

/// Minimum reduction factor of BA durability sync operations per save.
pub const GATE_BA_WRITE_SPEEDUP: f64 = 1.5;

/// Sync operations one baseline save issued under the per-artifact write
/// protocol BENCH_PR4.json was generated with: six artifacts (environment
/// doc, code file, weights file, layer-hash doc, model-info doc, lineage
/// record), each paying one payload fdatasync plus one directory fsync.
/// This is a protocol constant, not a measurement.
pub const BA_PER_ARTIFACT_SYNC_OPS: f64 = 12.0;

/// Compares a freshly generated phase-benchmark document against a frozen
/// baseline and returns the list of regressions. Empty result means the
/// gate passes. Three checks:
///
/// * PUA `hash` save-phase wall clock must hold
///   [`GATE_PUA_HASH_SPEEDUP`] over the frozen baseline (CPU-bound, so
///   run-to-run stable).
/// * BA durability syncs per save must be at least
///   [`GATE_BA_WRITE_SPEEDUP`] below [`BA_PER_ARTIFACT_SYNC_OPS`]. The
///   write win is gated on sync *count*, not wall clock: device throughput
///   on shared storage varies severalfold run to run, which would make a
///   wall-clock I/O ratio gate flaky in both directions, while the number
///   of fdatasync/fsync calls per save is exactly the structure the
///   batch commit coalesces and is identical on every machine.
/// * Every phase instrumented in the baseline must still report samples.
pub fn phase_gate(current: &serde_json::Value, baseline: &serde_json::Value) -> Vec<String> {
    let mut problems = Vec::new();
    let seconds = |doc: &serde_json::Value, approach: &str, phase: &str| {
        doc["approaches"][approach]["save_phases"][phase]["seconds"].as_f64()
    };
    match (seconds(baseline, "PUA", "hash"), seconds(current, "PUA", "hash")) {
        (Some(old), Some(new)) if new > 0.0 => {
            let speedup = old / new;
            if speedup < GATE_PUA_HASH_SPEEDUP {
                problems.push(format!(
                    "PUA save phase \"hash\": {old:.4}s -> {new:.4}s is {speedup:.2}x, below the {GATE_PUA_HASH_SPEEDUP:.1}x gate"
                ));
            }
        }
        (old, new) => problems.push(format!(
            "PUA save phase \"hash\": cannot compute speedup (baseline {old:?}, current {new:?})"
        )),
    }
    let sync_bound = BA_PER_ARTIFACT_SYNC_OPS / GATE_BA_WRITE_SPEEDUP;
    match current["approaches"]["BA"]["save_sync_ops_median"].as_u64() {
        Some(ops) if ops > 0 => {
            if ops as f64 > sync_bound {
                problems.push(format!(
                    "BA save issues {ops} sync ops, above the {sync_bound:.1} bound \
                     ({BA_PER_ARTIFACT_SYNC_OPS:.0} per-artifact syncs / {GATE_BA_WRITE_SPEEDUP:.1}x)"
                ));
            }
        }
        other => problems.push(format!(
            "BA save_sync_ops_median missing or zero in the current document ({other:?})"
        )),
    }
    // Structural drift guard: every instrumented phase of the baseline must
    // still report samples — a phase silently dropping to zero would let
    // the ratio gates pass vacuously on the next re-baseline.
    if let Some(approaches) = baseline["approaches"].as_object() {
        for (approach, entry) in approaches {
            for kind in ["save_phases", "recover_phases"] {
                let Some(phases) = entry[kind].as_object() else { continue };
                for phase in phases.keys() {
                    if current["approaches"][approach.as_str()][kind][phase.as_str()]["samples"]
                        .as_u64()
                        .unwrap_or(0)
                        == 0
                    {
                        problems.push(format!(
                            "{approach}: baseline {kind} entry {phase:?} has zero samples in the current document"
                        ));
                    }
                }
            }
        }
    }
    problems
}

/// Formats a flow kind name for DIST experiments respecting fast mode.
pub fn dist_flow_kind(fast: bool) -> FlowKind {
    if fast {
        FlowKind::Dist5
    } else {
        FlowKind::Dist20
    }
}

/// The chain depth the lineage benchmark compacts (the PR 6 acceptance
/// depth) and the bound it compacts to.
pub const LINEAGE_BENCH_DEPTH: usize = 64;
/// Depth bound used by the lineage benchmark's compaction.
pub const LINEAGE_BENCH_MAX_DEPTH: usize = 8;

/// TTR-vs-chain-depth benchmark (the `repro --lineage-json` payload,
/// written to `BENCH_PR6.json`): builds a depth-64 parameter-update chain,
/// measures tip TTR with a recover-phase breakdown, compacts the chain to
/// a depth bound of 8, and measures again — against a fresh depth-8 chain
/// as the control.
///
/// Returns the JSON document and the list of problems (non-byte-identical
/// recovery, TTR above 1.5x the control, missing promotions), so callers
/// can fail the run on regressions.
pub fn lineage_depth_benchmark(config: &HarnessConfig, seed: u64) -> (serde_json::Value, Vec<String>) {
    use mmlib_core::{RecoverOptions, SaveService};
    use mmlib_model::Model;
    use std::time::{Duration, Instant};

    let depth = LINEAGE_BENCH_DEPTH;
    let max_depth = LINEAGE_BENCH_MAX_DEPTH;
    let runs = config.runs.max(if config.fast { 3 } else { 5 });
    let mut problems = Vec::new();

    let build = |dir: &std::path::Path, depth: usize| -> (SaveService, mmlib_core::meta::SavedModelId) {
        let svc = SaveService::new(ModelStorage::open(dir).expect("open bench store"));
        let mut model = Model::new_initialized(ArchId::TinyCnn, seed);
        model.set_fully_trainable();
        let mut tip = svc.save_full(&model, None, "initial").expect("save chain root");
        for step in 0..depth {
            let mut first = true;
            model.visit_trainable_mut(&mut |_, w, _| {
                if first {
                    w.data_mut()[0] += 1e-3 + step as f32 * 1e-4;
                    first = false;
                }
            });
            let (id, _) =
                svc.save_update(&model, &tip, "partially_updated").expect("save chain link");
            tip = id;
        }
        (svc, tip)
    };
    // Min-of-N recovery time plus the breakdown of the last run (the
    // breakdown is deterministic in structure; only durations vary).
    let time_recover = |svc: &SaveService, id: &mmlib_core::meta::SavedModelId| {
        let mut best = Duration::MAX;
        let mut last = None;
        for _ in 0..runs {
            let t = Instant::now();
            let rec = svc.recover(id, RecoverOptions::default()).expect("recover bench tip");
            best = best.min(t.elapsed());
            last = Some(rec);
        }
        let rec = last.expect("at least one recovery run");
        (best, rec)
    };
    let breakdown_json = |b: &mmlib_core::RecoverBreakdown| {
        serde_json::json!({
            "load_ms": b.load.as_secs_f64() * 1e3,
            "recover_ms": b.recover.as_secs_f64() * 1e3,
            "check_env_ms": b.check_env.as_secs_f64() * 1e3,
            "verify_ms": b.verify.as_secs_f64() * 1e3,
            "recovered_bases": b.recovered_bases,
        })
    };

    let dir = tempfile::tempdir().expect("temp dir for lineage bench");
    let (svc, tip) = build(dir.path(), depth);
    let (ttr_before, rec_before) = time_recover(&svc, &tip);
    let bits_before: Vec<Vec<u32>> = rec_before
        .model
        .state_dict()
        .into_iter()
        .map(|(_, t)| t.data().iter().map(|v| v.to_bits()).collect())
        .collect();

    let lineage = mmlib_lineage::Lineage::new(&svc);
    let compact_start = Instant::now();
    let report = lineage.compact(&tip, max_depth).expect("compact bench chain");
    let compact_time = compact_start.elapsed();
    if report.promoted.is_empty() {
        problems.push(format!("compaction of a depth-{depth} chain promoted nothing"));
    }

    let (ttr_after, rec_after) = time_recover(&svc, &tip);
    let bits_after: Vec<Vec<u32>> = rec_after
        .model
        .state_dict()
        .into_iter()
        .map(|(_, t)| t.data().iter().map(|v| v.to_bits()).collect())
        .collect();
    if bits_before != bits_after {
        problems.push("recovery after compaction is not byte-identical".to_string());
    }

    // Control: a chain that was depth-8 from the start.
    let dir_control = tempfile::tempdir().expect("temp dir for control chain");
    let (svc_control, tip_control) = build(dir_control.path(), max_depth);
    let (ttr_control, rec_control) = time_recover(&svc_control, &tip_control);
    if ttr_after > ttr_control.mul_f64(1.5) {
        problems.push(format!(
            "compacted depth-{depth} TTR {ttr_after:?} exceeds 1.5x the depth-{max_depth} \
             control {ttr_control:?}"
        ));
    }

    let doc = serde_json::json!({
        "config": {
            "depth": depth,
            "max_depth": max_depth,
            "runs": runs,
            "seed": seed,
            "arch": "tinycnn",
            "fast": config.fast,
        },
        "before": {
            "ttr_ms": ttr_before.as_secs_f64() * 1e3,
            "phases": breakdown_json(&rec_before.breakdown),
        },
        "compaction": {
            "promoted": report.promoted.len(),
            "chain_len": report.chain.len(),
            "bytes_written": report.bytes_written,
            "seconds": compact_time.as_secs_f64(),
        },
        "after": {
            "ttr_ms": ttr_after.as_secs_f64() * 1e3,
            "phases": breakdown_json(&rec_after.breakdown),
        },
        "control_depth8": {
            "ttr_ms": ttr_control.as_secs_f64() * 1e3,
            "phases": breakdown_json(&rec_control.breakdown),
        },
        "byte_identical": bits_before == bits_after,
        "speedup": ttr_before.as_secs_f64() / ttr_after.as_secs_f64().max(1e-9),
    });
    (doc, problems)
}

#[cfg(test)]
mod tests {
    use super::phase_gate;

    fn baseline(pua_hash: f64) -> serde_json::Value {
        serde_json::json!({
            "approaches": {
                "PUA": {"save_phases": {"hash": {"seconds": pua_hash, "samples": 10}}},
            }
        })
    }

    fn current(pua_hash: f64, ba_sync_ops: u64) -> serde_json::Value {
        serde_json::json!({
            "approaches": {
                "PUA": {"save_phases": {"hash": {"seconds": pua_hash, "samples": 10}}},
                "BA": {"save_sync_ops_median": ba_sync_ops, "save_phases": {}},
            }
        })
    }

    #[test]
    fn gate_passes_at_the_target_ratios() {
        // 2.0x hash speedup; 8 sync ops = 12 per-artifact syncs / 1.5.
        let problems = phase_gate(&current(0.68 / 2.0, 8), &baseline(0.68));
        assert_eq!(problems, Vec::<String>::new());
    }

    #[test]
    fn gate_fails_below_either_target() {
        let slow_hash = phase_gate(&current(0.68 / 1.9, 8), &baseline(0.68));
        assert_eq!(slow_hash.len(), 1, "{slow_hash:?}");
        assert!(slow_hash[0].contains("PUA"), "{slow_hash:?}");
        let too_many_syncs = phase_gate(&current(0.68 / 2.0, 9), &baseline(0.68));
        assert_eq!(too_many_syncs.len(), 1, "{too_many_syncs:?}");
        assert!(too_many_syncs[0].contains("sync ops"), "{too_many_syncs:?}");
    }

    #[test]
    fn gate_fails_on_missing_fields_and_zero_sample_phases() {
        // Current document lost the PUA hash phase and the BA sync count:
        // both ratio terms are uncomputable AND the structural guard flags
        // the zero-sample phase.
        let current = serde_json::json!({
            "approaches": {
                "PUA": {"save_phases": {}},
                "BA": {"save_phases": {}},
            }
        });
        let problems = phase_gate(&current, &baseline(0.68));
        assert!(problems.iter().any(|p| p.contains("cannot compute")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("save_sync_ops_median")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("zero samples")), "{problems:?}");
    }
}
