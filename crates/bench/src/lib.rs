//! Shared experiment plumbing for the mmlib benchmark harness.
//!
//! The `repro` binary (`src/bin/repro.rs`) regenerates every table and
//! figure of the paper's evaluation; the criterion benches under `benches/`
//! measure the micro costs (hashing, Merkle diffing, serialization,
//! per-approach save/recover). Both build on the helpers here.

#![forbid(unsafe_code)]

use mmlib_core::meta::{ApproachKind, ModelRelation};
use mmlib_dist::flow::{run_flow, FlowConfig, FlowKind, FlowResult};
use mmlib_model::ArchId;

/// Global knobs for a harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Byte-size scale for datasets in the standard-flow experiments.
    /// 1.0 preserves the paper's dataset:model size ratios exactly.
    pub scale: f64,
    /// Byte-size scale for the DIST-N experiments (402 provenance saves at
    /// full scale would write tens of GB; the paper's *trends* are
    /// scale-free).
    pub dist_scale: f64,
    /// Runs per timed experiment (medians are taken across runs × nodes).
    pub runs: usize,
    /// Fast mode: smaller architectures / flows where the full version is
    /// expensive, for smoke-testing the harness itself.
    pub fast: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { scale: 1.0, dist_scale: 1.0 / 16.0, runs: 1, fast: false }
    }
}

/// Builds the standard-flow configuration used by Figs. 7 and 9–11.
pub fn standard_flow_config(
    approach: ApproachKind,
    arch: ArchId,
    relation: ModelRelation,
    u3_dataset: mmlib_data::DatasetId,
    scale: f64,
    recover_all: bool,
    seed: u64,
) -> FlowConfig {
    let mut config = FlowConfig::standard(approach, arch, relation);
    config.u3_dataset = u3_dataset;
    config.dataset_scale = scale;
    config.recover_all = recover_all;
    config.seed = seed;
    // Training resolution does not enter any storage or per-byte cost; use
    // the smallest resolution each stride pyramid supports (GoogLeNet's
    // pooling chain needs 32).
    config.train.resolution = if arch == ArchId::GoogLeNet { 32 } else { 16 };
    config
}

/// Runs a flow in a fresh temp directory (dropped afterwards, so repeated
/// experiments do not accumulate tens of GB on disk).
pub fn run_flow_tmp(config: &FlowConfig) -> FlowResult {
    let dir = tempfile::tempdir().expect("temp dir for flow storage");
    run_flow(config, dir.path())
}

/// Runs a flow `runs` times (varying the seed) and concatenates results for
/// cross-run medians, as the paper does across its five repetitions.
pub fn run_flow_runs(config: &FlowConfig, runs: usize) -> FlowResult {
    let results: Vec<FlowResult> = (0..runs)
        .map(|r| {
            let mut c = config.clone();
            c.seed = config.seed ^ ((r as u64) << 48);
            run_flow_tmp(&c)
        })
        .collect();
    mmlib_dist::metrics::concat_results(&results)
}

/// Formats bytes as decimal megabytes (the paper's unit).
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

/// The save phases each approach is expected to exercise during a standard
/// flow (its U1 is always a full snapshot, so the baseline's phases appear
/// in every approach's flow; listed here are the phases of the approach's
/// own U2/U3 saves plus that shared snapshot).
pub fn expected_save_phases(approach: ApproachKind) -> &'static [&'static str] {
    match approach {
        ApproachKind::Baseline => &["serialize", "hash", "write"],
        ApproachKind::ParamUpdate => &["diff", "hash", "serialize", "write"],
        ApproachKind::Provenance => &["pack", "hash", "write"],
    }
}

/// Recover phases every recovery reports (zero-duration phases included).
pub const EXPECTED_RECOVER_PHASES: [&str; 4] = ["fetch", "rebuild", "check_env", "verify"];

/// Aggregates phase breakdowns into `{phase: {seconds, samples}}`, where
/// `samples` counts the records whose breakdown contains the phase.
fn phase_stats<'a>(
    breakdowns: impl Iterator<Item = &'a mmlib_obs::PhaseBreakdown>,
) -> serde_json::Value {
    let mut acc: Vec<(String, f64, u64)> = Vec::new();
    for b in breakdowns {
        for (phase, d) in b.entries() {
            match acc.iter_mut().find(|(p, _, _)| p == phase) {
                Some(slot) => {
                    slot.1 += d.as_secs_f64();
                    slot.2 += 1;
                }
                None => acc.push((phase.to_string(), d.as_secs_f64(), 1)),
            }
        }
    }
    let mut map = serde_json::Map::new();
    for (phase, seconds, samples) in acc {
        map.insert(
            phase,
            serde_json::json!({"seconds": seconds, "samples": samples}),
        );
    }
    serde_json::Value::Object(map)
}

/// Runs the standard flow once per approach at a pinned scale/seed and
/// renders per-approach TTS/TTR/storage with per-phase breakdowns as JSON
/// (the `repro --json` payload, written to `BENCH_PR4.json`).
///
/// Returns the document and the list of problems — instrumented phases that
/// reported zero samples — so callers can fail the run on regressions.
pub fn phase_benchmark(config: &HarnessConfig, seed: u64) -> (serde_json::Value, Vec<String>) {
    let mut approaches = serde_json::Map::new();
    let mut problems = Vec::new();
    for approach in ApproachKind::all() {
        let flow = standard_flow_config(
            approach,
            ArchId::MobileNetV2,
            ModelRelation::PartiallyUpdated,
            mmlib_data::DatasetId::CocoFood512,
            config.scale,
            true,
            seed,
        );
        let result = run_flow_runs(&flow, config.runs);
        let tts = mmlib_dist::metrics::median_duration(
            result.saves.iter().map(|s| s.tts).collect(),
        );
        let ttr = mmlib_dist::metrics::median_duration(
            result.recovers.iter().map(|r| r.ttr).collect(),
        );
        let storage = mmlib_dist::metrics::median_u64(
            result.saves.iter().map(|s| s.storage_bytes).collect(),
        );
        let save_phases = phase_stats(result.saves.iter().map(|s| &s.phases));
        let recover_phases = phase_stats(result.recovers.iter().map(|r| &r.phases));

        for &phase in expected_save_phases(approach) {
            if save_phases[phase]["samples"].as_u64().unwrap_or(0) == 0 {
                problems.push(format!("{}: save phase {phase:?} has zero samples", approach.abbrev()));
            }
        }
        for phase in EXPECTED_RECOVER_PHASES {
            if recover_phases[phase]["samples"].as_u64().unwrap_or(0) == 0 {
                problems.push(format!("{}: recover phase {phase:?} has zero samples", approach.abbrev()));
            }
        }

        approaches.insert(
            approach.abbrev().to_string(),
            serde_json::json!({
                "saves": result.saves.len(),
                "recovers": result.recovers.len(),
                "tts_ms_median": tts.as_secs_f64() * 1e3,
                "ttr_ms_median": ttr.as_secs_f64() * 1e3,
                "storage_bytes_median": storage,
                "save_phases": save_phases,
                "recover_phases": recover_phases,
            }),
        );
    }
    let doc = serde_json::json!({
        "config": {
            "scale": config.scale,
            "runs": config.runs,
            "fast": config.fast,
            "seed": seed,
            "arch": "mobilenetv2",
            "flow": "STANDARD",
            "relation": "PartiallyUpdated",
        },
        "approaches": serde_json::Value::Object(approaches),
    });
    (doc, problems)
}

/// Formats a flow kind name for DIST experiments respecting fast mode.
pub fn dist_flow_kind(fast: bool) -> FlowKind {
    if fast {
        FlowKind::Dist5
    } else {
        FlowKind::Dist20
    }
}
