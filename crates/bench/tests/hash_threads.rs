//! `MMLIB_HASH_THREADS` regression: the hashing worker count is a pure
//! wall-time knob. Two runs at different thread counts must produce
//! identical digests and structurally identical BENCH documents — if the
//! worker count ever leaked into a digest or a document field, pinning the
//! variable in CI would mask a real nondeterminism bug.
//!
//! This file holds a single `#[test]` on purpose: it mutates the process
//! environment, which would race against parallel tests in the same binary.

use mmlib_bench::{phase_benchmark_with_arch, HarnessConfig};
use mmlib_model::{ArchId, Model};
use mmlib_tensor::hash_par::{self, HASH_THREADS_ENV};

/// Replaces every timing value (`seconds`, `tts_ms_median`, `ttr_ms_median`)
/// with null, keeping all structure and every deterministic value (phase
/// names, sample counts, save/recover counts, storage bytes) intact.
fn scrub_timings(v: &serde_json::Value) -> serde_json::Value {
    match v {
        serde_json::Value::Object(map) => serde_json::Value::Object(
            map.iter()
                .map(|(k, val)| {
                    let scrubbed = if matches!(
                        k.as_str(),
                        "seconds" | "tts_ms_median" | "ttr_ms_median"
                    ) {
                        serde_json::Value::Null
                    } else {
                        scrub_timings(val)
                    };
                    (k.clone(), scrubbed)
                })
                .collect(),
        ),
        serde_json::Value::Array(items) => {
            serde_json::Value::Array(items.iter().map(scrub_timings).collect())
        }
        other => other.clone(),
    }
}

#[test]
fn thread_count_never_changes_digests_or_bench_shape() {
    // Digest identity through the env-resolved worker count: the full
    // MobileNetV2 state map (the exact job list the save hot path hashes),
    // serial vs heavily oversubscribed.
    let model = Model::new_initialized(ArchId::MobileNetV2, 7);
    let state = model.state_entries();
    let tensors: Vec<_> = state.iter().map(|(_, t, _, _)| *t).collect();
    std::env::set_var(HASH_THREADS_ENV, "1");
    let serial = hash_par::hash_tensors(&tensors);
    std::env::set_var(HASH_THREADS_ENV, "13");
    let parallel = hash_par::hash_tensors(&tensors);
    assert_eq!(serial, parallel, "digests must not depend on MMLIB_HASH_THREADS");

    // Full BENCH document shape: the phase benchmark at two thread counts
    // must agree on everything except wall time — same phases, same sample
    // counts, same save/recover counts, same storage bytes.
    let config = HarnessConfig { scale: 1.0 / 8192.0, dist_scale: 1.0 / 8192.0, runs: 1, fast: true };
    std::env::set_var(HASH_THREADS_ENV, "1");
    let (doc_one, problems_one) = phase_benchmark_with_arch(&config, 42, ArchId::TinyCnn);
    std::env::set_var(HASH_THREADS_ENV, "4");
    let (doc_four, problems_four) = phase_benchmark_with_arch(&config, 42, ArchId::TinyCnn);
    std::env::remove_var(HASH_THREADS_ENV);

    assert_eq!(problems_one, Vec::<String>::new());
    assert_eq!(problems_four, Vec::<String>::new());
    assert_eq!(
        scrub_timings(&doc_one),
        scrub_timings(&doc_four),
        "BENCH document shape must not depend on MMLIB_HASH_THREADS"
    );
}
