//! Criterion benchmarks of the mmlib-net wire path: frame codec throughput,
//! loopback blob round trips through a live registry server, and
//! high-client-count pooled throughput — many threads multiplexed over one
//! `RemoteStore` pool against a sharded server.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmlib_net::protocol::{decode_frame, encode_frame, Frame, Opcode};
use mmlib_net::{RegistryServer, RemoteStore, ServerConfig, ShardConfig};
use mmlib_store::{ModelStorage, StorageBackend};

fn bench_frame_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec");
    for size in [1024usize, 64 * 1024, 1024 * 1024] {
        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let frame = Frame::with_payload(
            Opcode::Chunk,
            serde_json::json!({"len": size}),
            bytes::Bytes::from(payload),
        );
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &frame, |b, frame| {
            b.iter(|| {
                let mut encoded = encode_frame(frame).unwrap();
                decode_frame(&mut encoded).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_loopback_blob_round_trip(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let server = RegistryServer::bind(ModelStorage::open(dir.path()).unwrap(), "127.0.0.1:0")
        .expect("bind loopback server");
    let client = RemoteStore::connect(server.addr()).expect("connect");

    let mut group = c.benchmark_group("loopback_blob");
    group.sample_size(10);
    for size in [64 * 1024usize, 4 * 1024 * 1024] {
        let blob: Vec<u8> = (0..size).map(|i| (i % 249) as u8).collect();
        // Put + get: both directions of chunked streaming per iteration.
        group.throughput(Throughput::Bytes(2 * size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &blob, |b, blob| {
            b.iter(|| {
                let id = client.put_file(blob).unwrap();
                let back = client.get_file(&id).unwrap();
                assert_eq!(back.len(), blob.len());
                client.remove_file(&id).unwrap();
            })
        });
    }
    group.finish();
}

/// Aggregate throughput with many concurrent clients hammering one server
/// through a shared pipelined pool — the configuration the v2 protocol
/// exists for. One iteration = every client completes a put + get.
fn bench_concurrent_clients(c: &mut Criterion) {
    let dir = tempfile::tempdir().unwrap();
    let server = RegistryServer::bind_with_config(
        ModelStorage::open(dir.path()).unwrap(),
        "127.0.0.1:0",
        ServerConfig { shards: ShardConfig { workers: 8 }, ..ServerConfig::default() },
    )
    .expect("bind loopback server");
    let store = Arc::new(
        RemoteStore::builder(server.addr())
            .pool_size(8)
            .max_retries(8)
            .build()
            .expect("connect pooled client"),
    );

    const BLOB: usize = 32 * 1024;
    let mut group = c.benchmark_group("concurrent_clients");
    group.sample_size(10);
    for clients in [16usize, 128] {
        group.throughput(Throughput::Bytes((clients * BLOB * 2) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, &clients| {
            b.iter(|| {
                crossbeam::scope(|s| {
                    for t in 0..clients {
                        let store = Arc::clone(&store);
                        s.spawn(move |_| {
                            let blob: Vec<u8> =
                                (0..BLOB).map(|i| ((i + t * 13) % 251) as u8).collect();
                            let id = store.put_file(&blob).unwrap();
                            let back = store.get_file(&id).unwrap();
                            assert_eq!(back.len(), blob.len());
                            store.remove_file(&id).unwrap();
                        });
                    }
                })
                .unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_frame_codec,
    bench_loopback_blob_round_trip,
    bench_concurrent_clients
);
criterion_main!(benches);
