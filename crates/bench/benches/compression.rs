//! Ablation bench: plain vs delta-compressed parameter updates.
//!
//! Measures (a) the codec's encode/decode throughput on realistic update
//! payloads and (b) the end-to-end save path with and without compression —
//! quantifying the storage-retraining trade-off extension of paper §4.7.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mmlib_compress::{decode_update, encode_update};
use mmlib_tensor::{Pcg32, Tensor};

/// A classifier-sized update tensor pair: base weights and a fine-tuned
/// version whose values moved by small gradient steps.
fn classifier_pair() -> (Tensor, Tensor) {
    let mut rng = Pcg32::seeded(1);
    let base = Tensor::rand_normal([1000, 512], 0.0, 0.05, &mut rng);
    let mut tuned = base.clone();
    for v in tuned.data_mut().iter_mut() {
        *v -= 0.01 * *v + 1e-5 * rng.normal(0.0, 1.0);
    }
    (base, tuned)
}

fn bench_codec(c: &mut Criterion) {
    let (base, tuned) = classifier_pair();
    let entries = vec![("fc.weight", &tuned)];
    let base_fn = |name: &str| (name == "fc.weight").then_some(&base);
    let none = |_: &str| None;

    let mut group = c.benchmark_group("update_codec");
    group.throughput(Throughput::Bytes(tuned.nbytes() as u64));
    group.bench_function("encode_delta_2MB", |b| b.iter(|| encode_update(&entries, &base_fn)));
    group.bench_function("encode_raw_2MB", |b| b.iter(|| encode_update(&entries, &none)));

    let encoded = encode_update(&entries, &base_fn);
    println!(
        "delta codec: {} raw -> {} encoded (ratio {:.2}x, {} delta / {} raw entries)",
        encoded.raw_bytes,
        encoded.bytes.len(),
        encoded.ratio(),
        encoded.delta_entries,
        encoded.raw_entries
    );
    group.bench_function("decode_delta_2MB", |b| {
        b.iter(|| decode_update(&encoded.bytes, &base_fn).unwrap())
    });
    group.finish();
}

criterion_group!(compression, bench_codec);
criterion_main!(compression);
