//! Architecture construction cost — the ablation behind the paper's Fig. 12
//! GoogLeNet anomaly: recovery must construct the architecture (running its
//! init routine) before overwriting parameters, and GoogLeNet's
//! inverse-CDF truncated-normal initializer is disproportionately slow for
//! its parameter count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlib_model::{ArchId, Model};

fn bench_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("arch_init");
    group.sample_size(10);
    for arch in [ArchId::MobileNetV2, ArchId::GoogLeNet, ArchId::ResNet18] {
        group.bench_with_input(BenchmarkId::from_parameter(arch.name()), &arch, |b, &arch| {
            b.iter(|| Model::new_initialized(arch, 0))
        });
    }
    group.finish();
}

criterion_group!(arch_init, bench_init);
criterion_main!(arch_init);
