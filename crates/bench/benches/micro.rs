//! Criterion micro-benchmarks for the mmlib substrate: hashing,
//! serialization, Merkle diffing (vs the naive scan — the ablation for the
//! paper's Fig. 4 design choice), and deterministic-vs-parallel reductions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmlib_core::merkle::MerkleTree;
use mmlib_tensor::hash::{hash_tensor, sha256};
use mmlib_tensor::ser::{state_from_bytes, state_to_bytes, tensor_from_bytes, tensor_to_bytes};
use mmlib_tensor::{ops, ExecMode, Pcg32, Tensor};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [4 * 1024usize, 1024 * 1024, 16 * 1024 * 1024] {
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(d))
        });
    }
    group.finish();
}

fn bench_tensor_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_tensor");
    for numel in [4_096usize, 1_048_576] {
        let mut rng = Pcg32::seeded(1);
        let t = Tensor::rand_normal([numel], 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Bytes((numel * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(numel), &t, |b, t| {
            b.iter(|| hash_tensor(t))
        });
    }
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_ser");
    let mut rng = Pcg32::seeded(2);
    let t = Tensor::rand_normal([1024, 1024], 0.0, 1.0, &mut rng);
    group.throughput(Throughput::Bytes(t.nbytes() as u64));
    group.bench_function("to_bytes_4MB", |b| b.iter(|| tensor_to_bytes(&t)));
    let bytes = tensor_to_bytes(&t);
    group.bench_function("from_bytes_4MB", |b| b.iter(|| tensor_from_bytes(&bytes).unwrap()));

    // A state dict with many small entries stresses per-entry overheads.
    let entries: Vec<(String, Tensor)> = (0..256)
        .map(|i| (format!("layer{i}.weight"), Tensor::rand_normal([64, 64], 0.0, 1.0, &mut rng)))
        .collect();
    group.bench_function("state_dict_256x16KB", |b| {
        b.iter(|| state_to_bytes(entries.iter().map(|(n, t)| (n.as_str(), t)).collect::<Vec<_>>()))
    });
    let sd_bytes = state_to_bytes(entries.iter().map(|(n, t)| (n.as_str(), t)).collect::<Vec<_>>());
    group.bench_function("state_dict_parse", |b| b.iter(|| state_from_bytes(&sd_bytes).unwrap()));
    group.finish();
}

fn bench_merkle_diff(c: &mut Criterion) {
    // Ablation: Merkle walk vs naive leaf scan at the layer counts of the
    // paper's example and of the real architectures (ResNet-152: 311).
    let mut group = c.benchmark_group("merkle_diff");
    for n in [8usize, 64, 128, 311] {
        let base: Vec<(String, _)> =
            (0..n).map(|i| (format!("layer{i}"), sha256(format!("v{i}").as_bytes()))).collect();
        let mut changed = base.clone();
        let last = changed.len() - 1;
        changed[last].1 = sha256(b"changed");
        let ta = MerkleTree::from_leaves(base);
        let tb = MerkleTree::from_leaves(changed);
        group.bench_with_input(BenchmarkId::new("merkle", n), &(&ta, &tb), |b, (ta, tb)| {
            b.iter(|| ta.diff(tb))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &(&ta, &tb), |b, (ta, tb)| {
            b.iter(|| ta.diff_naive(tb))
        });
    }
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot_product");
    let mut rng = Pcg32::seeded(3);
    let n = 1_000_000usize;
    let a: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let b2: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("serial_1M", |b| {
        b.iter(|| ops::dot(&a, &b2, ExecMode::Deterministic))
    });
    group.bench_function("parallel_1M", |b| b.iter(|| ops::dot(&a, &b2, ExecMode::Parallel)));
    group.finish();
}

criterion_group!(
    micro,
    bench_sha256,
    bench_tensor_hash,
    bench_serialization,
    bench_merkle_diff,
    bench_reductions
);
criterion_main!(micro);
