//! Criterion benchmarks of the three approaches' save and recover paths
//! (one bench per approach x operation, on a partially-updated ResNet-18 —
//! the per-table data behind Figs. 7/10/11 at micro scale).

use criterion::{criterion_group, criterion_main, Criterion};
use mmlib_core::meta::ModelRelation;
use mmlib_core::{RecoverOptions, SaveService, TrainProvenance};
use mmlib_data::loader::LoaderConfig;
use mmlib_data::{DataLoader, Dataset, DatasetId};
use mmlib_model::{ArchId, Model};
use mmlib_store::ModelStorage;
use mmlib_tensor::ExecMode;
use mmlib_train::{ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};

const SCALE: f64 = 1.0 / 4096.0;

struct Fixture {
    svc: SaveService,
    model: Model,
    base: mmlib_core::meta::SavedModelId,
    prov: TrainProvenance,
    _dir: tempfile::TempDir,
}

fn fixture() -> Fixture {
    let dir = tempfile::tempdir().unwrap();
    let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
    let mut model = Model::new_initialized(ArchId::ResNet18, 1);
    model.set_fully_trainable();
    let base = svc.save_full(&model, None, "initial").unwrap();

    model.set_classifier_only_trainable();
    let loader_config = LoaderConfig {
        batch_size: 2,
        resolution: 16,
        seed: 5,
        max_images: Some(4),
        ..Default::default()
    };
    let sgd_config = SgdConfig::default();
    let train_config = TrainConfig {
        epochs: 1,
        max_batches_per_epoch: Some(2),
        seed: 5,
        mode: ExecMode::Deterministic,
    };
    let sgd = Sgd::new(sgd_config);
    let prov = TrainProvenance {
        dataset_id: DatasetId::CocoOutdoor512,
        dataset_scale: SCALE,
        dataset_external: false,
        loader_config,
        optimizer: sgd_config.into(),
        optimizer_state_before: sgd.state_bytes(),
        train_config,
        relation: ModelRelation::PartiallyUpdated,
    };
    let loader = DataLoader::new(Dataset::new(DatasetId::CocoOutdoor512, SCALE), loader_config);
    let mut trainer = ImageNetTrainService::new(loader, sgd, train_config);
    trainer.train(&mut model);
    Fixture { svc, model, base, prov, _dir: dir }
}

fn bench_saves(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("save");
    group.sample_size(10);
    group.bench_function("baseline_resnet18", |b| {
        b.iter(|| f.svc.save_full(&f.model, Some(&f.base), "partially_updated").unwrap())
    });
    group.bench_function("param_update_resnet18", |b| {
        b.iter(|| f.svc.save_update(&f.model, &f.base, "partially_updated").unwrap())
    });
    group.bench_function("provenance_resnet18", |b| {
        b.iter(|| f.svc.save_provenance(&f.model, &f.base, &f.prov).unwrap())
    });
    group.finish();
}

fn bench_recovers(c: &mut Criterion) {
    let f = fixture();
    let ba = f.svc.save_full(&f.model, Some(&f.base), "partially_updated").unwrap();
    let (pua, _) = f.svc.save_update(&f.model, &f.base, "partially_updated").unwrap();
    let mpa = f.svc.save_provenance(&f.model, &f.base, &f.prov).unwrap();
    let mut group = c.benchmark_group("recover");
    group.sample_size(10);
    group.bench_function("baseline_resnet18", |b| {
        b.iter(|| f.svc.recover(&ba, RecoverOptions::default()).unwrap())
    });
    group.bench_function("param_update_resnet18", |b| {
        b.iter(|| f.svc.recover(&pua, RecoverOptions::default()).unwrap())
    });
    group.bench_function("provenance_resnet18", |b| {
        b.iter(|| f.svc.recover(&mpa, RecoverOptions::default()).unwrap())
    });
    group.finish();
}

criterion_group!(approaches, bench_saves, bench_recovers);
criterion_main!(approaches);
