//! In-repo shim of the `parking_lot` lock API over `std::sync`.
//!
//! parking_lot's locks differ from std's in that `lock()` returns the guard
//! directly (no poisoning `Result`). This shim wraps `std::sync` locks and
//! recovers from poisoning — a panic while holding the lock does not poison
//! it for other threads, matching parking_lot semantics closely enough for
//! this workspace's uses (short critical sections guarding initialization
//! and counters).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquire methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
