//! In-repo shim of the `serde` API surface this workspace uses.
//!
//! The build environment has no network access to a crate registry, so the
//! real serde cannot be vendored. This shim keeps source code that says
//! `use serde::{Serialize, Deserialize}` + `#[derive(Serialize, Deserialize)]`
//! compiling and behaving like serde-with-serde_json does for every shape the
//! workspace serializes, with one simplification: the data model is
//! JSON-only. [`Serialize`] converts a value into a [`Value`] tree and
//! [`Deserialize`] reads one back, instead of streaming through generic
//! `Serializer`/`Deserializer` visitors.
//!
//! Supported serde behaviours (used by this workspace and mirrored here):
//! * structs with named fields → JSON objects; missing `Option` fields
//!   deserialize to `None`; `#[serde(default)]`; `#[serde(skip_serializing_if
//!   = "path")]`.
//! * single-field tuple structs (newtypes) → transparent.
//! * unit-only and data-carrying enums, externally tagged by default,
//!   `#[serde(tag = "...")]` internally tagged, `#[serde(rename_all =
//!   "snake_case")]`.
//! * JSON numbers preserve the u64/i64/f64 distinction, so `u64` seeds and
//!   PRNG state round-trip exactly; non-finite floats serialize to `null`
//!   exactly like serde_json.

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize as DeriveDeserialize, Serialize as DeriveSerialize};
pub use value::{Map, Number, Value};

/// The derive macro for [`Serialize`] (same name as the trait, as in serde).
pub use serde_derive::Serialize;

/// A value that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// The derive macro for [`Deserialize`] (same name as the trait, as in serde).
pub use serde_derive::Deserialize;

/// A value that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a JSON value.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::from_u64(v as u64))
                } else {
                    Value::Number(Number::from_i64(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::from_f64(*self))
        } else {
            // serde_json serializes non-finite floats as null.
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // serde's representation: {"secs": u64, "nanos": u32}.
        let mut m = Map::new();
        m.insert("secs".to_string(), self.as_secs().to_value());
        m.insert("nanos".to_string(), self.subsec_nanos().to_value());
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

fn type_err(expected: &str, got: &Value) -> de::Error {
    de::Error::custom(format!("expected {expected}, got {}", got.kind_name()))
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_u64().ok_or_else(|| type_err(stringify!($t), v))?;
                <$t>::try_from(n)
                    .map_err(|_| de::Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_i64().ok_or_else(|| type_err(stringify!($t), v))?;
                <$t>::try_from(n)
                    .map_err(|_| de::Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64().ok_or_else(|| type_err("f64", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool().ok_or_else(|| type_err("bool", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str().map(str::to_string).ok_or_else(|| type_err("string", v))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v.as_str().ok_or_else(|| type_err("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v.as_array().ok_or_else(|| type_err("array", v))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let arr = v.as_array().ok_or_else(|| type_err("tuple array", v))?;
                if arr.len() != $len {
                    return Err(de::Error::custom(format!(
                        "expected array of length {}, got {}", $len, arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )+};
}
de_tuple!(
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D),
);

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let obj = v.as_object().ok_or_else(|| type_err("object", v))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let obj = v.as_object().ok_or_else(|| type_err("object", v))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let obj = v.as_object().ok_or_else(|| type_err("duration object", v))?;
        let secs = obj
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| de::Error::custom("duration missing `secs`"))?;
        let nanos = obj
            .get("nanos")
            .and_then(Value::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| de::Error::custom("duration missing `nanos`"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
