//! The JSON value model: [`Value`], [`Number`], and the insertion-ordered
//! object [`Map`], plus the JSON text parser and printers.
//!
//! Mirrors `serde_json::Value` where this workspace relies on it: numbers
//! keep the u64/i64/f64 distinction, objects preserve insertion order, and
//! indexing a missing key yields `Value::Null` instead of panicking.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::de::Error;

/// A JSON number: unsigned/signed integer or double, as in serde_json.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer (fits u64).
    PosInt(u64),
    /// A negative integer (fits i64).
    NegInt(i64),
    /// A finite double.
    Float(f64),
}

impl Number {
    /// Wraps a u64.
    pub fn from_u64(n: u64) -> Number {
        Number::PosInt(n)
    }

    /// Wraps an i64 (normalizing non-negative values to the u64 form).
    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Wraps a finite f64.
    pub fn from_f64(n: f64) -> Number {
        Number::Float(n)
    }

    /// As u64 if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(*n),
            _ => None,
        }
    }

    /// As i64 if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(*n).ok(),
            Number::NegInt(n) => Some(*n),
            Number::Float(_) => None,
        }
    }

    /// As f64 (always possible; integers convert).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(n) => *n as f64,
            Number::NegInt(n) => *n as f64,
            Number::Float(n) => *n,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(n) => {
                // Keep float-ness on reparse: integral doubles print with a
                // trailing ".0", exactly as serde_json does.
                if n.fract() == 0.0 && n.abs() < 1e16 {
                    write!(f, "{n:.1}")
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

/// An insertion-ordered string→value map (the JSON object representation).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks a key up mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(existing) = self.get_mut(&key) {
            Some(std::mem::replace(existing, value))
        } else {
            self.entries.push((key, value));
            None
        }
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value tree (the serde_json `Value` analog).
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// A short name of the value's JSON type, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As &str for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As bool for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As u64 for non-negative integer numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As i64 for integer numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As f64 for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As a slice for arrays.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a mutable vec for arrays.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a map for objects.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As a mutable map for objects.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Non-panicking indexing: object key or array index, `None` otherwise.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Parses a JSON text.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Renders compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Renders pretty JSON (2-space indent, as serde_json's pretty printer).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

// --- indexing ---------------------------------------------------------------

/// Types usable in [`Value::get`] / `value[index]` (serde_json's `Index`).
pub trait ValueIndex {
    /// Looks `self` up inside `v`.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
    /// Looks `self` up mutably, inserting for object keys when absent.
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value;
}

impl ValueIndex for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        if v.is_null() {
            *v = Value::Object(Map::new());
        }
        let map = match v {
            Value::Object(m) => m,
            other => panic!("cannot index {} with a string key", other.kind_name()),
        };
        if !map.contains_key(self) {
            map.insert(self.to_string(), Value::Null);
        }
        map.get_mut(self).expect("just inserted")
    }
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        (**self).index_into_mut(v)
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        self.as_str().index_into_mut(v)
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        match v {
            Value::Array(a) => a.get_mut(*self).expect("array index out of bounds"),
            other => panic!("cannot index {} with a usize", other.kind_name()),
        }
    }
}

static NULL: Value = Value::Null;

impl<I: ValueIndex> Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: ValueIndex> IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_into_mut(self)
    }
}

// --- literal comparisons (assert_eq!(value["k"], "x") etc.) -----------------

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! eq_num {
    ($($t:ty),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => Number::from(*other) == *n,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// --- From conversions (for the json! macro) ---------------------------------

macro_rules! num_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(n: $t) -> Number { Number::from_u64(n as u64) }
        }
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Number(Number::from(n)) }
        }
    )*};
}
num_from_uint!(u8, u16, u32, u64, usize);

macro_rules! num_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(n: $t) -> Number { Number::from_i64(n as i64) }
        }
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Number(Number::from(n)) }
        }
    )*};
}
num_from_int!(i8, i16, i32, i64, isize);

macro_rules! num_from_float {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(n: $t) -> Number { Number::from_f64(n as f64) }
        }
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                let n = n as f64;
                if n.is_finite() { Value::Number(Number::from_f64(n)) } else { Value::Null }
            }
        }
    )*};
}
num_from_float!(f32, f64);

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

// --- printer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unexpected end of input in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::custom("unescaped control character in string"))
                }
                _ => return Err(Error::custom("unexpected end of input in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        let n: f64 = text
            .parse()
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))?;
        Ok(Value::Number(Number::Float(n)))
    }
}
