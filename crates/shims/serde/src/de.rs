//! Deserialization errors.
//!
//! In real serde, `de::Error` is a trait; this shim provides a single
//! concrete error type with the same `custom` constructor call-shape, which
//! `serde_json` re-exports as its error type.

use std::fmt;

/// A (de)serialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message (serde's
    /// `de::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
