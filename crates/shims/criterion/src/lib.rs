//! In-repo shim of the `criterion` benchmarking API surface this workspace
//! uses.
//!
//! Provides the same bench-definition macros and group/bencher types, with a
//! plain timing loop instead of criterion's statistical engine: each bench
//! runs `sample_size` timed iterations (after one warm-up) and prints the
//! mean wall-clock time, plus throughput when configured. Under `cargo test`
//! (which invokes bench binaries with `--test`) each bench body runs exactly
//! once so the suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to bench functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo runs `harness = false` bench targets with `--test` during
        // `cargo test`; real criterion detects this flag the same way.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            test_mode: self.test_mode,
        }
    }
}

/// Throughput metadata printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifies one bench within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_string() }
    }
}

/// A named group of related benches.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher { samples, test_mode: self.test_mode, total: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        if self.test_mode {
            println!("test {}/{id} ... ok", self.name);
            return;
        }
        let mean = if bencher.iters > 0 {
            bencher.total / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:>10.1} Kelem/s", n as f64 / mean.as_secs_f64() / 1e3)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean:>12.2?}/iter ({} iters){rate}", self.name, bencher.iters);
    }
}

/// Runs and times the measured closure.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.test_mode {
            black_box(f()); // warm-up, untimed
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Bundles bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
