//! In-repo shim of `tempfile::tempdir`.
//!
//! Creates uniquely named directories under the system temp dir and removes
//! them (recursively) on drop — the subset of tempfile this workspace uses.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{fs, io};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory deleted (recursively) when this handle is dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort, as in tempfile: cleanup failure is not a panic.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Creates a fresh uniquely named temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    let base = std::env::temp_dir();
    let pid = std::process::id();
    // Retry with a process-wide counter until creation succeeds at an unused
    // name; create_dir fails (AlreadyExists) rather than reusing a dir.
    for _ in 0..1024 {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!(".mmlib-tmp-{pid}-{n:06}"));
        match fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::new(io::ErrorKind::AlreadyExists, "could not find a free temp dir name"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn creates_and_removes() {
        let kept_path;
        {
            let dir = crate::tempdir().unwrap();
            kept_path = dir.path().to_path_buf();
            assert!(kept_path.is_dir());
            std::fs::write(kept_path.join("f.txt"), b"x").unwrap();
        }
        assert!(!kept_path.exists());
    }

    #[test]
    fn names_are_unique() {
        let a = crate::tempdir().unwrap();
        let b = crate::tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
