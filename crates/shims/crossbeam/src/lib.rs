//! In-repo shim of `crossbeam::scope` over `std::thread::scope`.
//!
//! The build environment has no crate registry, so this shim maps the
//! crossbeam scoped-thread API the workspace uses onto the std scoped
//! threads stabilized in Rust 1.63. Differences from real crossbeam:
//! `std::thread::scope` re-panics when an unjoined spawned thread panicked,
//! so `scope` only returns `Err` for panics of threads the caller already
//! joined and discarded — every call site here unwraps the result either
//! way.

use std::any::Any;

pub mod channel;

/// A scope handle passed to [`scope`]'s closure and to spawned threads.
///
/// Wraps `std::thread::Scope`; `Copy` so `move` closures can capture it.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a spawned scoped thread (crossbeam's `ScopedJoinHandle`).
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or its panic
    /// payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. As in crossbeam, the closure
    /// receives the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
    }
}

/// Creates a scope in which threads borrowing local data can be spawned;
/// all spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawns_and_joins_with_borrowed_data() {
        let data = [1u64, 2, 3, 4];
        let total = crate::scope(|s| {
            let handles: Vec<_> =
                data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
