//! Multi-producer multi-consumer channels (crossbeam's `channel` module),
//! mapped onto `std::sync::mpsc` with a mutex-shared receiver so multiple
//! workers can `recv` from one queue.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

pub use std::sync::mpsc::{RecvError, SendError};

/// The sending half; clone freely across producers.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Sender<T> {
    /// Sends a value; fails only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value)
    }
}

/// The receiving half; clone freely across consumers (each value is
/// delivered to exactly one of them).
pub struct Receiver<T> {
    inner: Arc<Mutex<mpsc::Receiver<T>>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Receiver<T> {
    /// Blocks for the next value; fails when every sender is gone and the
    /// queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv()
    }
}

/// Creates an unbounded mpmc channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
}

#[cfg(test)]
mod tests {
    #[test]
    fn values_fan_out_across_consumers() {
        let (tx, rx) = super::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let seen = crate::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<u32> =
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort_unstable();
            all
        })
        .unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }
}
