//! In-repo shim of the `serde_json` API surface this workspace uses.
//!
//! The heavy lifting (the [`Value`] tree, parser, and printers) lives in the
//! `serde` shim; this crate provides serde_json's public entry points on top:
//! `to_value`/`from_value`/`from_str`/`from_slice`, the string/byte printers,
//! and the [`json!`] macro.

pub use serde::de::Error;
pub use serde::value::{Map, Number, Value};

use serde::{Deserialize, Serialize};

/// serde_json-compatible `value` module (some code paths name
/// `serde_json::value::Value`).
pub mod value {
    pub use serde::value::{Map, Number, Value};
}

/// Converts any serializable value into a [`Value`] tree.
///
/// The shim's serialization is infallible (the data model is JSON itself),
/// but the `Result` shape matches serde_json.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a `T` from a [`Value`] (consumed, as in serde_json).
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Parses a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&Value::parse(s)?)
}

/// Parses a `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::custom(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string())
}

/// Serializes a value to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Serializes a value to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string_pretty(value)?.into_bytes())
}

#[doc(hidden)]
pub fn value_from<T: Serialize>(value: T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from JSON-like syntax, as in serde_json.
///
/// Object/array values may be literals, `null`, `true`/`false`, nested
/// arrays/objects, or arbitrary expressions (tokens are accumulated up to
/// the next top-level comma); a bare top-level expression
/// (`json!(x.id())`) also works.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($elems:tt)+ ]) => { $crate::json_array!([]; $($elems)+) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($entries:tt)+ }) => {{
        let mut __object = $crate::Map::new();
        $crate::json_entries!(__object; $($entries)+);
        $crate::Value::Object(__object)
    }};
    ($other:expr) => { $crate::value_from($other) };
}

/// Internal: munches comma-separated array elements into a `vec![...]`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ([$($done:expr),*];) => {
        $crate::Value::Array(::std::vec![$($done),*])
    };
    ([$($done:expr),*]; $($rest:tt)+) => {
        $crate::json_array_value!([$($done),*]; (); $($rest)+)
    };
}

/// Internal: accumulates one array element's tokens up to a top-level comma,
/// then appends the finished element expression to the done-list.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_value {
    ([$($done:expr),*]; ($($acc:tt)+); , $($rest:tt)*) => {
        $crate::json_array!([$($done,)* $crate::json!($($acc)+)]; $($rest)*)
    };
    ([$($done:expr),*]; ($($acc:tt)+);) => {
        $crate::json_array!([$($done,)* $crate::json!($($acc)+)];)
    };
    ([$($done:expr),*]; ($($acc:tt)*); $next:tt $($rest:tt)*) => {
        $crate::json_array_value!([$($done),*]; ($($acc)* $next); $($rest)*)
    };
}

/// Internal: munches comma-separated `"key": value` object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($obj:ident;) => {};
    ($obj:ident; $key:tt : $($rest:tt)+) => {
        $crate::json_entry_value!($obj; $key; (); $($rest)+);
    };
}

/// Internal: accumulates one entry's value tokens up to a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entry_value {
    ($obj:ident; $key:tt; ($($acc:tt)+); , $($rest:tt)*) => {
        $obj.insert($key.to_string(), $crate::json!($($acc)+));
        $crate::json_entries!($obj; $($rest)*);
    };
    ($obj:ident; $key:tt; ($($acc:tt)+);) => {
        $obj.insert($key.to_string(), $crate::json!($($acc)+));
    };
    ($obj:ident; $key:tt; ($($acc:tt)*); $next:tt $($rest:tt)*) => {
        $crate::json_entry_value!($obj; $key; ($($acc)* $next); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        assert!(json!({}).as_object().is_some());
        let v = json!({"a": 1, "s": "x", "b": true, "n": null, "arr": [1, 2, 3]});
        assert_eq!(v["a"], 1u64);
        assert_eq!(v["s"], "x");
        assert_eq!(v["b"], true);
        assert!(v["n"].is_null());
        assert_eq!(v["arr"][2], 3u64);
        let owned = json!("ff".repeat(2));
        assert_eq!(owned, "ffff");
    }

    #[test]
    fn json_macro_multi_token_values() {
        let name = "model";
        let v = json!({
            "msg": format!("{name}-{}", 1 + 1),
            "sum": 2 + 3,
            "list": [name.len(), "x".repeat(2), 4],
        });
        assert_eq!(v["msg"], "model-2");
        assert_eq!(v["sum"], 5u64);
        assert_eq!(v["list"][0], 5u64);
        assert_eq!(v["list"][1], "xx");
        assert_eq!(v["list"][2], 4u64);
    }

    #[test]
    fn round_trip_via_text() {
        let v = json!({"x": [1, 2.5, -3], "y": {"z": "hi"}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
