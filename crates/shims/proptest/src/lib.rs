//! In-repo shim of the `proptest` API surface this workspace uses.
//!
//! Provides deterministic property testing without shrinking: each
//! `proptest!` test runs `ProptestConfig::cases` iterations with inputs
//! drawn from a PRNG seeded from the test's module path, name, and case
//! index, so failures are reproducible run-to-run. `prop_assert*` macros
//! panic (rather than returning `Err` as real proptest does) — equivalent
//! behaviour for `#[test]` functions.
//!
//! Supported strategies: `any::<T>()` for integer/bool/`Index` types,
//! integer and float ranges, tuples (up to 6), `prop::collection::vec`,
//! `prop_map`, and string literals as a small regex subset (character
//! classes, literals, `\.` escapes, groups, and `{m,n}` repetition — enough
//! for patterns like `"[a-z]{1,12}(\\.[a-z]{1,8}){0,2}"`).

pub mod strategy;

pub use strategy::{any, Arbitrary, Strategy, TestRng};

/// Run-count configuration (`cases` is the only knob this shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Shrink-iteration cap. Accepted for source compatibility with real
    /// proptest (and so `..ProptestConfig::default()` struct updates have
    /// fields to fill); the shim does not shrink, so it is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 cases; the workspace's property
        // tests are compute-heavy (training steps, SHA-256 trees), so the
        // shim's default is smaller. Tests that need a specific count set
        // it via `#![proptest_config(...)]`.
        ProptestConfig { cases: 32, max_shrink_iters: 1024 }
    }
}

/// The `proptest::prelude` equivalent: everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The `proptest::prop` module namespace (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `len` and elements
        /// from `element`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generates vectors of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range for vec strategy");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.range_usize(self.len.start, self.len.end);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::strategy::{Arbitrary, TestRng};

        /// An index into a collection whose size is unknown at generation
        /// time; resolved against a length via [`Index::index`].
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Maps this sample onto `0..len`. Panics if `len == 0`, as in
            /// proptest.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, bool)> {
        (0u8..10, any::<bool>()).prop_map(|(n, b)| (n, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, x in -4.0f32..4.0, p in arb_pair()) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-4.0..4.0).contains(&x));
            prop_assert!(p.0 < 10);
        }

        #[test]
        fn vec_lengths_honoured(v in prop::collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn regex_subset_shapes(s in "[a-z]{1,12}(\\.[a-z]{1,8}){0,2}", idx in any::<prop::sample::Index>()) {
            let parts: Vec<&str> = s.split('.').collect();
            prop_assert!(!parts.is_empty() && parts.len() <= 3);
            for p in &parts {
                prop_assert!(!p.is_empty() && p.chars().all(|c| c.is_ascii_lowercase()));
            }
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u32..1000, 1..10);
        let a: Vec<u32> = strat.generate(&mut crate::TestRng::for_case("t", 3));
        let b: Vec<u32> = strat.generate(&mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }
}
