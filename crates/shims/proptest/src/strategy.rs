//! Strategies and the deterministic test PRNG.

use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// PRNG
// ---------------------------------------------------------------------------

/// Deterministic PRNG (splitmix64) seeded from the test name and case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64 step.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform u64 in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform i64 in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! range_uint_strategy {
    ($($t:ty => $via:ident),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.$via(self.start as _, self.end as _) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if end == <$t>::MAX {
                    // Avoid end+1 overflow: split off the MAX endpoint.
                    if start == end || rng.next_u64() % 64 == 0 {
                        return end;
                    }
                    return rng.$via(start as _, end as _) as $t;
                }
                rng.$via(start as _, (end + 1) as _) as $t
            }
        }
    )*};
}
range_uint_strategy!(u8 => range_u64, u16 => range_u64, u32 => range_u64, u64 => range_u64, usize => range_u64);
range_uint_strategy!(i8 => range_i64, i16 => range_i64, i32 => range_i64, i64 => range_i64, isize => range_i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.range_f64(self.start as f64, self.end as f64) as f32
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// One parsed pattern element with its repetition bounds.
enum Atom {
    /// Set of candidate characters (from `[a-z0-9_]`-style classes).
    Class(Vec<char>),
    /// A literal character (possibly from a `\x` escape).
    Literal(char),
    /// A `(...)` group of atoms.
    Group(Vec<(Atom, u32, u32)>),
}

/// String literals act as strategies generating matches of a small regex
/// subset: literals, `\`-escapes, `[a-z0-9]` classes, `(...)` groups, and
/// `{m}`/`{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(&mut self.chars().peekable(), self);
        let mut out = String::new();
        emit_atoms(&atoms, rng, &mut out);
        out
    }
}

fn parse_pattern(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(Atom, u32, u32)> {
    let mut atoms = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            break;
        }
        chars.next();
        let atom = match c {
            '[' => Atom::Class(parse_class(chars, pattern)),
            '(' => {
                let inner = parse_pattern(chars, pattern);
                match chars.next() {
                    Some(')') => Atom::Group(inner),
                    _ => panic!("unclosed group in pattern {pattern:?}"),
                }
            }
            '\\' => Atom::Literal(
                chars.next().unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            other => Atom::Literal(other),
        };
        let (min, max) = parse_repetition(chars, pattern);
        atoms.push((atom, min, max));
    }
    atoms
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<char> {
    let mut set = Vec::new();
    loop {
        match chars.next() {
            Some(']') => break,
            Some(lo) => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling range in pattern {pattern:?}"));
                    set.extend(lo..=hi);
                } else {
                    set.push(lo);
                }
            }
            None => panic!("unclosed character class in pattern {pattern:?}"),
        }
    }
    assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
    set
}

/// Parses an optional `{m}` / `{m,n}` suffix; defaults to exactly once.
fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (u32, u32) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    loop {
        match chars.next() {
            Some('}') => break,
            Some(c) => spec.push(c),
            None => panic!("unclosed repetition in pattern {pattern:?}"),
        }
    }
    let parse = |s: &str| -> u32 {
        s.trim().parse().unwrap_or_else(|_| panic!("bad repetition {spec:?} in {pattern:?}"))
    };
    match spec.split_once(',') {
        Some((m, n)) => (parse(m), parse(n)),
        None => (parse(&spec), parse(&spec)),
    }
}

fn emit_atoms(atoms: &[(Atom, u32, u32)], rng: &mut TestRng, out: &mut String) {
    for (atom, min, max) in atoms {
        let reps = if min == max { *min } else { rng.range_u64(*min as u64, *max as u64 + 1) as u32 };
        for _ in 0..reps {
            match atom {
                Atom::Class(set) => {
                    out.push(set[rng.range_usize(0, set.len())]);
                }
                Atom::Literal(c) => out.push(*c),
                Atom::Group(inner) => emit_atoms(inner, rng, out),
            }
        }
    }
}
