//! In-repo placeholder for the `rand` crate.
//!
//! The workspace deliberately uses its own `Pcg32` (see
//! `crates/tensor/src/prng.rs`) for reproducibility, so no `rand` API is
//! actually called; this empty shim only satisfies the declared dependency
//! in an environment with no crate registry.
