//! In-repo shim of the `bytes` crate surface this workspace uses.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view into shared immutable
//! bytes (backed by `Arc<[u8]>`); [`BytesMut`] is a growable buffer that
//! freezes into one. The [`Buf`]/[`BufMut`] traits carry the little-endian
//! cursor accessors used by the tensor wire format and the network frame
//! codec.

use std::ops::Deref;
use std::sync::Arc;

/// Read access to a cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes. Panics if `cnt > remaining()`, as in `bytes`.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// A cheaply cloneable slice of shared immutable bytes.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies the slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    /// Both halves share the underlying allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// Returns a shared sub-slice of `self` (start..end within this view).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes { data: Arc::from(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_accessors() {
        let mut out = BytesMut::with_capacity(32);
        out.put_u8(7);
        out.put_u16_le(0x0102);
        out.put_u32_le(0xdead_beef);
        out.put_u64_le(u64::MAX - 1);
        out.put_f32_le(1.5);
        out.put_slice(b"xyz");
        let mut b = out.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0x0102);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f32_le(), 1.5);
        let mut s = [0u8; 3];
        b.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    fn split_to_shares_and_advances() {
        let mut b = Bytes::copy_from_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(head.as_ref(), b"hello");
        assert_eq!(b.as_ref(), b" world");
        assert_eq!(b.slice(1..6).as_ref(), b"world");
    }
}
