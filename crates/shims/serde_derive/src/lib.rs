//! In-repo shim of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! The build environment has no crate registry, so `syn`/`quote` are
//! unavailable; this macro parses the item's token stream by hand. It
//! supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields, with the field attributes `#[serde(default)]`
//!   and `#[serde(skip_serializing_if = "path")]`;
//! * single-field tuple structs (newtypes), serialized transparently;
//! * enums with unit, newtype, and struct variants, externally tagged by
//!   default, with the container attributes `#[serde(rename_all =
//!   "snake_case")]` and `#[serde(tag = "...")]` (internal tagging).
//!
//! Generics are not supported (nothing in the workspace derives on a generic
//! type); the macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` (JSON-value-based).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives the shim `serde::Deserialize` (JSON-value-based).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    rename_all: Option<String>,
    tag: Option<String>,
    kind: ItemKind,
}

enum ItemKind {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Single-field tuple struct; the string is the inner type.
    Newtype(String),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    ty: String,
    default: bool,
    skip_serializing_if: Option<String>,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Single-field tuple variant; the string is the inner type.
    Newtype(String),
    Struct(Vec<Field>),
}

/// Attributes collected from `#[serde(...)]` lists.
#[derive(Default)]
struct SerdeAttrs {
    rename_all: Option<String>,
    tag: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let attrs = parse_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let types = parse_tuple_types(g.stream());
                if types.len() != 1 {
                    panic!(
                        "serde shim derive supports only single-field tuple structs; \
                         `{name}` has {} fields",
                        types.len()
                    );
                }
                ItemKind::Newtype(types.into_iter().next().expect("one tuple field"))
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive supports structs and enums, got `{other}`"),
    };

    Item { name, rename_all: attrs.rename_all, tag: attrs.tag, kind }
}

/// Parses leading `#[...]` attributes, returning any serde attrs found.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1;
        let Some(TokenTree::Group(g)) = tokens.get(*pos) else {
            panic!("expected attribute group after `#`");
        };
        parse_attr_group(g.stream(), &mut attrs);
        *pos += 1;
    }
    attrs
}

fn parse_attr_group(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(name)) if name.to_string() == "serde" => {}
        _ => return, // not a serde attribute (doc comment, derive, ...)
    }
    let Some(TokenTree::Group(list)) = tokens.get(1) else {
        return;
    };
    let items: Vec<TokenTree> = list.stream().into_iter().collect();
    let mut i = 0;
    while i < items.len() {
        let TokenTree::Ident(key) = &items[i] else {
            panic!("unsupported serde attribute syntax: {:?}", items[i]);
        };
        let key = key.to_string();
        let value = match items.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                let Some(TokenTree::Literal(lit)) = items.get(i + 2) else {
                    panic!("expected string literal after `{key} =`");
                };
                i += 3;
                Some(strip_quotes(&lit.to_string()))
            }
            _ => {
                i += 1;
                None
            }
        };
        // Skip a separating comma.
        if matches!(items.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        match (key.as_str(), value) {
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("default", None) => attrs.default = true,
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
            (other, _) => panic!("unsupported serde attribute `{other}` in shim derive"),
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        // pub(crate), pub(super), ...
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Parses `name: Type, ...` named fields (with optional attrs/visibility).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        let ty = take_type(&tokens, &mut pos);
        fields.push(Field {
            name,
            ty,
            default: attrs.default,
            skip_serializing_if: attrs.skip_serializing_if,
        });
        // Skip the trailing comma.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

/// Collects type tokens up to a top-level `,` (tracking `<...>` nesting).
fn take_type(tokens: &[TokenTree], pos: &mut usize) -> String {
    let mut depth = 0usize;
    let mut parts: Vec<TokenTree> = Vec::new();
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            _ => {}
        }
        parts.push(tok.clone());
        *pos += 1;
    }
    // Render through TokenStream's Display so joint punctuation (`::`) stays
    // intact instead of degrading to `: :`.
    parts.into_iter().collect::<TokenStream>().to_string()
}

/// Parses tuple-struct/variant field types `(Type, Type)`.
fn parse_tuple_types(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut types = Vec::new();
    while pos < tokens.len() {
        let mut scratch = pos;
        let _ = parse_attrs(&tokens, &mut scratch);
        pos = scratch;
        skip_visibility(&tokens, &mut pos);
        let ty = take_type(&tokens, &mut pos);
        if !ty.is_empty() {
            types.push(ty);
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    types
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let _attrs = parse_attrs(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                let types = parse_tuple_types(g.stream());
                if types.len() != 1 {
                    panic!(
                        "serde shim derive supports only single-field tuple variants; \
                         `{name}` has {} fields",
                        types.len()
                    );
                }
                VariantShape::Newtype(types.into_iter().next().expect("one variant field"))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Applies `rename_all` to a variant name (only snake_case is used/supported).
fn rename_variant(name: &str, rename_all: Option<&str>) -> String {
    match rename_all {
        None => name.to_string(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some(other) => panic!("unsupported rename_all rule `{other}` in shim derive"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut b = String::from("let mut __map = ::serde::value::Map::new();\n");
            for f in fields {
                let insert = format!(
                    "__map.insert({:?}.to_string(), ::serde::Serialize::to_value(&self.{}));\n",
                    f.name, f.name
                );
                if let Some(skip_if) = &f.skip_serializing_if {
                    b.push_str(&format!("if !{skip_if}(&self.{}) {{ {insert} }}\n", f.name));
                } else {
                    b.push_str(&insert);
                }
            }
            b.push_str("::serde::Value::Object(__map)");
            b
        }
        ItemKind::Newtype(_) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = rename_variant(&v.name, item.rename_all.as_deref());
                match (&v.shape, &item.tag) {
                    (VariantShape::Unit, None) => {
                        arms.push_str(&format!(
                            "{name}::{} => ::serde::Value::String({wire:?}.to_string()),\n",
                            v.name
                        ));
                    }
                    (VariantShape::Unit, Some(tag)) => {
                        arms.push_str(&format!(
                            "{name}::{} => {{\n\
                             let mut __map = ::serde::value::Map::new();\n\
                             __map.insert({tag:?}.to_string(), ::serde::Value::String({wire:?}.to_string()));\n\
                             ::serde::Value::Object(__map)\n\
                             }}\n",
                            v.name
                        ));
                    }
                    (VariantShape::Newtype(_), None) => {
                        arms.push_str(&format!(
                            "{name}::{}(__inner) => {{\n\
                             let mut __map = ::serde::value::Map::new();\n\
                             __map.insert({wire:?}.to_string(), ::serde::Serialize::to_value(__inner));\n\
                             ::serde::Value::Object(__map)\n\
                             }}\n",
                            v.name
                        ));
                    }
                    (VariantShape::Newtype(_), Some(tag)) => {
                        // Internally tagged: the inner value must be an
                        // object; the tag is prepended (as serde does).
                        arms.push_str(&format!(
                            "{name}::{}(__inner) => {{\n\
                             let __inner_v = ::serde::Serialize::to_value(__inner);\n\
                             let mut __map = ::serde::value::Map::new();\n\
                             __map.insert({tag:?}.to_string(), ::serde::Value::String({wire:?}.to_string()));\n\
                             match __inner_v {{\n\
                                 ::serde::Value::Object(__inner_map) => {{\n\
                                     for (__k, __v) in &__inner_map {{ __map.insert(__k.clone(), __v.clone()); }}\n\
                                 }}\n\
                                 __other => panic!(\"internally tagged variant must serialize to an object, got {{}}\", __other.kind_name()),\n\
                             }}\n\
                             ::serde::Value::Object(__map)\n\
                             }}\n",
                            v.name
                        ));
                    }
                    (VariantShape::Struct(fields), tag) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner =
                            String::from("let mut __fields = ::serde::value::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.insert({:?}.to_string(), ::serde::Serialize::to_value({}));\n",
                                f.name, f.name
                            ));
                        }
                        let wrap = match tag {
                            None => format!(
                                "let mut __map = ::serde::value::Map::new();\n\
                                 __map.insert({wire:?}.to_string(), ::serde::Value::Object(__fields));\n\
                                 ::serde::Value::Object(__map)"
                            ),
                            Some(tag) => format!(
                                "let mut __map = ::serde::value::Map::new();\n\
                                 __map.insert({tag:?}.to_string(), ::serde::Value::String({wire:?}.to_string()));\n\
                                 for (__k, __v) in &__fields {{ __map.insert(__k.clone(), __v.clone()); }}\n\
                                 ::serde::Value::Object(__map)"
                            ),
                        };
                        arms.push_str(&format!(
                            "{name}::{} {{ {} }} => {{\n{inner}{wrap}\n}}\n",
                            v.name,
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// Generates the expression deserializing one struct field from `__obj`.
fn field_expr(owner: &str, f: &Field) -> String {
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        // `Option` fields yield `None` from Null (serde's behaviour for
        // missing Option fields); everything else reports a missing field.
        format!(
            "<{} as ::serde::Deserialize>::from_value(&::serde::Value::Null)\n\
             .map_err(|_| ::serde::de::Error::custom(\
                 concat!(\"missing field `{}` in {}\")))?",
            f.ty, f.name, owner
        )
    };
    format!(
        "match __obj.get({:?}) {{\n\
             Some(__v) => <{} as ::serde::Deserialize>::from_value(__v)\n\
                 .map_err(|__e| ::serde::de::Error::custom(\
                     format!(\"field `{}` of {}: {{}}\", __e)))?,\n\
             None => {missing},\n\
         }}",
        f.name, f.ty, f.name, owner
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{}: {},\n", f.name, field_expr(name, f)));
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::de::Error::custom(concat!(\"expected object for \", stringify!({name}))))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        ItemKind::Newtype(ty) => format!(
            "Ok({name}(<{ty} as ::serde::Deserialize>::from_value(__v)?))"
        ),
        ItemKind::Enum(variants) => {
            let wire_names: Vec<String> = variants
                .iter()
                .map(|v| rename_variant(&v.name, item.rename_all.as_deref()))
                .collect();
            let expected = wire_names.join(", ");
            match &item.tag {
                Some(tag) => {
                    // Internally tagged: dispatch on the tag key.
                    let mut arms = String::new();
                    for (v, wire) in variants.iter().zip(&wire_names) {
                        let construct = match &v.shape {
                            VariantShape::Unit => format!("Ok({name}::{})", v.name),
                            VariantShape::Newtype(ty) => format!(
                                "Ok({name}::{}(<{ty} as ::serde::Deserialize>::from_value(__v)?))",
                                v.name
                            ),
                            VariantShape::Struct(fields) => {
                                let mut inits = String::new();
                                for f in fields {
                                    inits.push_str(&format!(
                                        "{}: {},\n",
                                        f.name,
                                        field_expr(name, f)
                                    ));
                                }
                                format!("Ok({name}::{} {{\n{inits}}})", v.name)
                            }
                        };
                        arms.push_str(&format!("{wire:?} => {{ {construct} }}\n"));
                    }
                    format!(
                        "let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::de::Error::custom(concat!(\"expected object for \", stringify!({name}))))?;\n\
                         let __tag = __obj.get({tag:?})\
                             .and_then(::serde::Value::as_str)\
                             .ok_or_else(|| ::serde::de::Error::custom(\
                                 concat!(\"missing tag `\", {tag:?}, \"` for \", stringify!({name}))))?;\n\
                         match __tag {{\n{arms}\
                             __other => Err(::serde::de::Error::custom(format!(\
                                 \"unknown {name} variant {{__other:?}}, expected one of: {expected}\"))),\n\
                         }}"
                    )
                }
                None => {
                    // Externally tagged: a bare string for unit variants, a
                    // single-key object for data variants.
                    let mut unit_arms = String::new();
                    let mut keyed_arms = String::new();
                    for (v, wire) in variants.iter().zip(&wire_names) {
                        match &v.shape {
                            VariantShape::Unit => {
                                unit_arms
                                    .push_str(&format!("{wire:?} => Ok({name}::{}),\n", v.name));
                            }
                            VariantShape::Newtype(ty) => {
                                keyed_arms.push_str(&format!(
                                    "{wire:?} => Ok({name}::{}(<{ty} as ::serde::Deserialize>::from_value(__inner)?)),\n",
                                    v.name
                                ));
                            }
                            VariantShape::Struct(fields) => {
                                let mut inits = String::new();
                                for f in fields {
                                    inits.push_str(&format!(
                                        "{}: {},\n",
                                        f.name,
                                        field_expr(name, f)
                                    ));
                                }
                                keyed_arms.push_str(&format!(
                                    "{wire:?} => {{\n\
                                         let __obj = __inner.as_object().ok_or_else(|| \
                                             ::serde::de::Error::custom(\"expected object for struct variant\"))?;\n\
                                         Ok({name}::{} {{\n{inits}}})\n\
                                     }}\n",
                                    v.name
                                ));
                            }
                        }
                    }
                    format!(
                        "match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                                 __other => Err(::serde::de::Error::custom(format!(\
                                     \"unknown {name} variant {{__other:?}}, expected one of: {expected}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__map) if __map.len() == 1 => {{\n\
                                 let (__key, __inner) = __map.iter().next().expect(\"len checked\");\n\
                                 match __key.as_str() {{\n{keyed_arms}\
                                     __other => Err(::serde::de::Error::custom(format!(\
                                         \"unknown {name} variant {{__other:?}}, expected one of: {expected}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::de::Error::custom(format!(\
                                 \"expected {name} variant, got {{}}\", __other.kind_name()))),\n\
                         }}"
                    )
                }
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}"
    )
}
