//! Training substrate for the mmlib reproduction.
//!
//! The provenance approach recovers a model by *re-executing its training*
//! (§3.3), which requires every training component to be (a) fully
//! determined by serializable configuration and (b) deterministic given a
//! seed and [`mmlib_tensor::ExecMode::Deterministic`]. This crate provides
//! those components:
//!
//! * [`loss`] — softmax cross-entropy with analytic gradient.
//! * [`optim`] — SGD with momentum; the momentum velocities are an *internal
//!   state* in the paper's taxonomy (§3.3), serialized to a state file by
//!   the provenance wrapper.
//! * [`service`] — [`service::TrainService`]: the "overall training logic"
//!   object of the paper's Fig. 5, binding a dataloader, an optimizer and
//!   hyper-parameters into a reproducible `train` method.
//! * [`timing`] — instrumented training that splits wall time into
//!   data-load / forward / backward, used by the deterministic-training
//!   study (paper Fig. 13).

#![forbid(unsafe_code)]

pub mod adam;
pub mod loss;
pub mod optim;
pub mod service;
pub mod timing;

pub use loss::cross_entropy;
pub use adam::{Adam, AdamConfig};
pub use optim::{AnyOptimizer, OptimizerConfig, Sgd, SgdConfig};
pub use service::{ImageNetTrainService, TrainConfig, TrainService};
pub use timing::{timed_train, TrainTimings};
