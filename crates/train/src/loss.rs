//! Softmax cross-entropy loss.

use mmlib_tensor::Tensor;

/// Computes mean softmax cross-entropy over a batch and the gradient with
/// respect to the logits.
///
/// `logits` is `[N, C]`; `labels` holds one class id per row. Returns
/// `(mean_loss, grad)` where `grad` is `[N, C]` with the standard
/// `(softmax - onehot) / N` gradient. Numerically stabilized by the max
/// trick; all reductions are serial (the loss itself is never the
/// determinism bottleneck — the batched layer reductions are).
pub fn cross_entropy(logits: &Tensor, labels: &[u32]) -> (f32, Tensor) {
    let dims = logits.shape().dims();
    assert_eq!(dims.len(), 2, "logits must be [N, C]");
    let (n, c) = (dims[0], dims[1]);
    assert_eq!(labels.len(), n, "one label per row");
    let ld = logits.data();
    let mut grad = Tensor::zeros([n, c]);
    let gd = grad.data_mut();
    let mut total = 0.0f64;
    for i in 0..n {
        let row = &ld[i * c..(i + 1) * c];
        let label = labels[i] as usize;
        assert!(label < c, "label {label} out of range for {c} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        let log_denom = denom.ln();
        total += f64::from(log_denom - (row[label] - max));
        let scale = 1.0 / n as f32;
        for j in 0..c {
            let p = (row[j] - max).exp() / denom;
            let onehot = if j == label { 1.0 } else { 0.0 };
            gd[i * c + j] = (p - onehot) * scale;
        }
    }
    ((total / n as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_tensor::Pcg32;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros([2, 10]);
        let (loss, _) = cross_entropy(&logits, &[3, 7]);
        assert!((loss - 10.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros([1, 4]);
        logits.data_mut()[2] = 20.0;
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = Pcg32::seeded(1);
        let logits = Tensor::rand_normal([4, 8], 0.0, 2.0, &mut rng);
        let (_, grad) = cross_entropy(&logits, &[0, 1, 2, 3]);
        for i in 0..4 {
            let s: f32 = grad.data()[i * 8..(i + 1) * 8].iter().sum();
            assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn gradient_matches_numerics() {
        let mut rng = Pcg32::seeded(2);
        let logits = Tensor::rand_normal([2, 5], 0.0, 1.0, &mut rng);
        let labels = [4u32, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..logits.numel() {
            let mut up = logits.clone();
            up.data_mut()[idx] += eps;
            let mut down = logits.clone();
            down.data_mut()[idx] -= eps;
            let (lu, _) = cross_entropy(&up, &labels);
            let (ldn, _) = cross_entropy(&down, &labels);
            let numeric = (lu - ldn) / (2.0 * eps);
            let analytic = grad.data()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "idx {idx}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "label")]
    fn out_of_range_label_panics() {
        cross_entropy(&Tensor::zeros([1, 3]), &[3]);
    }
}
