//! Instrumented training for the deterministic-training study (Fig. 13).
//!
//! The paper measures, per training run, the time spent (a) loading data to
//! the device, (b) in the forward pass, and (c) in the backward pass, in
//! deterministic and non-deterministic mode. [`timed_train`] reproduces that
//! split: data materialization (decode + augment + batch assembly) stands in
//! for the host-to-GPU copy, and forward/backward are the real kernel times
//! under the chosen [`ExecMode`].
//!
//! This is the one module in the deterministic crates allowed to read the
//! wall clock: it *measures* training, it never feeds timing back into
//! parameters, hashes, or replayable state.
// mmlib-lint: allow-file(D1, dedicated timing module; wall-clock reads never influence deterministic state)

use std::time::{Duration, Instant};

use mmlib_data::DataLoader;
use mmlib_model::{Ctx, Model};
use mmlib_tensor::{ExecMode, Pcg32};

use crate::loss::cross_entropy;
use crate::optim::Sgd;

/// Accumulated wall time per training phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrainTimings {
    /// Batch materialization (decode, augmentation, stacking).
    pub data_load: Duration,
    /// Forward passes.
    pub forward: Duration,
    /// Backward passes + optimizer steps.
    pub backward: Duration,
    /// Batches processed.
    pub batches: u64,
}

impl TrainTimings {
    /// Total time across phases.
    pub fn total(&self) -> Duration {
        self.data_load + self.forward + self.backward
    }
}

/// Trains `model` for `epochs` epochs (optionally capping batches per epoch)
/// and returns the per-phase timings.
pub fn timed_train(
    model: &mut Model,
    loader: &DataLoader,
    optimizer: &mut Sgd,
    epochs: u64,
    max_batches_per_epoch: Option<u64>,
    seed: u64,
    mode: ExecMode,
) -> TrainTimings {
    let mut rng = Pcg32::new(seed, 0x7469_6d65_645f_7472); // "timed_tr"
    let mut t = TrainTimings::default();
    let per_epoch = max_batches_per_epoch
        .map_or(u64::MAX, |m| m)
        .min(loader.batches_per_epoch());
    for epoch in 0..epochs {
        for b in 0..per_epoch {
            let start = Instant::now();
            let Some(batch) = loader.batch(epoch, b) else { break };
            t.data_load += start.elapsed();

            let mut ctx = Ctx::train(&mut rng, mode);
            let start = Instant::now();
            let logits = model.forward(batch.images, &mut ctx);
            t.forward += start.elapsed();

            let start = Instant::now();
            let (_, grad) = cross_entropy(&logits, &batch.labels);
            model.zero_grad();
            model.backward(grad, &mut ctx);
            optimizer.step(model);
            t.backward += start.elapsed();
            t.batches += 1;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::SgdConfig;
    use mmlib_data::loader::LoaderConfig;
    use mmlib_data::{Dataset, DatasetId};
    use mmlib_model::ArchId;

    #[test]
    fn timings_cover_all_batches() {
        let mut model = Model::new_initialized(ArchId::TinyCnn, 1);
        model.set_fully_trainable();
        let loader = DataLoader::new(
            Dataset::new(DatasetId::CocoOutdoor512, 0.0005),
            LoaderConfig { batch_size: 2, resolution: 8, max_images: Some(4), ..Default::default() },
        );
        let mut sgd = Sgd::new(SgdConfig::default());
        let t = timed_train(&mut model, &loader, &mut sgd, 2, Some(2), 9, ExecMode::Deterministic);
        assert_eq!(t.batches, 4);
        assert!(t.forward > Duration::ZERO);
        assert!(t.backward > Duration::ZERO);
        assert!(t.total() >= t.forward + t.backward);
    }
}
