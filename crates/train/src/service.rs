//! The training-logic object: [`TrainService`].
//!
//! Paper §3.3 / Fig. 5: "Every *TrainService* defines the logic to train a
//! given model in its *train* method and references all objects that are
//! relevant for it". Our [`ImageNetTrainService`] binds a [`DataLoader`]
//! (stateless parametrized object), an [`Sgd`] optimizer (stateful
//! parametrized object) and the hyper-parameters into a deterministic
//! training routine. The provenance layer in `mmlib-core` wraps each of
//! these in wrapper objects and serializes them.

use mmlib_data::{DataLoader, Dataset};
use mmlib_model::{Ctx, Model};
use mmlib_tensor::{ExecMode, Pcg32};
use serde::{Deserialize, Serialize};

use crate::loss::cross_entropy;
use crate::optim::AnyOptimizer;

/// Hyper-parameters of one training run — everything beyond the wrapped
/// objects that the provenance approach must record to replay the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: u64,
    /// Optional cap on batches per epoch (`None` = full epoch). The paper's
    /// own evaluation replays "only ... two epochs with two batches" (§4.4);
    /// the harness uses this knob the same way.
    pub max_batches_per_epoch: Option<u64>,
    /// Seed for dropout and any other in-training randomness.
    pub seed: u64,
    /// Execution mode: deterministic kernels are required for provenance
    /// recovery; parallel kernels are faster but non-reproducible.
    pub mode: ExecMode,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 1,
            max_batches_per_epoch: None,
            seed: 0,
            mode: ExecMode::Deterministic,
        }
    }
}

/// The training-logic interface of the paper's Fig. 5.
pub trait TrainService {
    /// Trains `model` in place. Must be deterministic whenever the service
    /// was constructed with [`ExecMode::Deterministic`].
    fn train(&mut self, model: &mut Model);

    /// The dataset this service trains on (for provenance capture).
    fn dataset(&self) -> &Dataset;
}

/// Image-classification training: the paper's `ImageNetTrainService` example.
pub struct ImageNetTrainService {
    loader: DataLoader,
    optimizer: AnyOptimizer,
    config: TrainConfig,
    last_loss: Option<f32>,
}

impl ImageNetTrainService {
    /// Builds the service from its three referenced objects.
    pub fn new(
        loader: DataLoader,
        optimizer: impl Into<AnyOptimizer>,
        config: TrainConfig,
    ) -> Self {
        ImageNetTrainService { loader, optimizer: optimizer.into(), config, last_loss: None }
    }

    /// The wrapped dataloader.
    pub fn loader(&self) -> &DataLoader {
        &self.loader
    }

    /// The wrapped optimizer (mutable: its state evolves during training).
    pub fn optimizer(&self) -> &AnyOptimizer {
        &self.optimizer
    }

    /// Mutable optimizer access (state restore).
    pub fn optimizer_mut(&mut self) -> &mut AnyOptimizer {
        &mut self.optimizer
    }

    /// The hyper-parameters.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Mean loss of the last processed batch, if any training has happened.
    pub fn last_loss(&self) -> Option<f32> {
        self.last_loss
    }

    /// Number of batches one call to `train` processes.
    pub fn total_batches(&self) -> u64 {
        let per_epoch = self
            .config
            .max_batches_per_epoch
            .map_or(self.loader.batches_per_epoch(), |m| m.min(self.loader.batches_per_epoch()));
        per_epoch * self.config.epochs
    }
}

impl TrainService for ImageNetTrainService {
    fn train(&mut self, model: &mut Model) {
        let mut rng = Pcg32::new(self.config.seed, 0x7472_6169_6e5f_7376); // "train_sv"
        let per_epoch = self
            .config
            .max_batches_per_epoch
            .map_or(u64::MAX, |m| m)
            .min(self.loader.batches_per_epoch());
        for epoch in 0..self.config.epochs {
            for b in 0..per_epoch {
                let Some(batch) = self.loader.batch(epoch, b) else { break };
                let mut ctx = Ctx::train(&mut rng, self.config.mode);
                let logits = model.forward(batch.images, &mut ctx);
                let (loss, grad) = cross_entropy(&logits, &batch.labels);
                model.zero_grad();
                model.backward(grad, &mut ctx);
                self.optimizer.step(model);
                self.last_loss = Some(loss);
            }
        }
    }

    fn dataset(&self) -> &Dataset {
        self.loader.dataset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::SgdConfig;
    use mmlib_data::loader::LoaderConfig;
    use mmlib_data::DatasetId;
    use mmlib_model::ArchId;

    fn service(mode: ExecMode, seed: u64) -> ImageNetTrainService {
        let dataset = Dataset::new(DatasetId::CocoOutdoor512, 0.0005);
        let loader = DataLoader::new(
            dataset,
            LoaderConfig {
                batch_size: 2,
                resolution: 8,
                shuffle: true,
                augment: true,
                seed,
                max_images: Some(4),
            },
        );
        ImageNetTrainService::new(
            loader,
            crate::Sgd::new(SgdConfig { lr: 0.01, momentum: 0.9, weight_decay: 0.0, max_grad_norm: None }),
            TrainConfig { epochs: 2, max_batches_per_epoch: Some(2), seed, mode },
        )
    }

    #[test]
    fn training_changes_the_model_and_reports_loss() {
        let mut model = Model::new_initialized(ArchId::TinyCnn, 5);
        model.set_fully_trainable();
        let before = model.state_dict();
        let mut svc = service(ExecMode::Deterministic, 1);
        svc.train(&mut model);
        assert!(svc.last_loss().is_some());
        let after = model.state_dict();
        assert!(before.iter().zip(&after).any(|((_, a), (_, b))| !a.bit_eq(b)));
    }

    #[test]
    fn deterministic_training_replays_bit_identically() {
        let run = || {
            let mut model = Model::new_initialized(ArchId::TinyCnn, 6);
            model.set_fully_trainable();
            let mut svc = service(ExecMode::Deterministic, 2);
            svc.train(&mut model);
            model
        };
        let a = run();
        let b = run();
        assert!(a.models_equal(&b), "provenance replay depends on this");
    }

    #[test]
    fn partial_training_only_touches_classifier() {
        let mut model = Model::new_initialized(ArchId::TinyCnn, 7);
        model.set_classifier_only_trainable();
        let before = model.state_dict();
        let mut svc = service(ExecMode::Deterministic, 3);
        svc.train(&mut model);
        for ((p, a), (_, b)) in before.iter().zip(&model.state_dict()) {
            if p.starts_with("fc") {
                assert!(!a.bit_eq(b), "{p} must train");
            } else {
                assert!(a.bit_eq(b), "{p} must stay frozen (params AND buffers)");
            }
        }
    }

    #[test]
    fn total_batches_accounts_for_caps() {
        let svc = service(ExecMode::Deterministic, 4);
        assert_eq!(svc.total_batches(), 4); // 2 epochs x min(2, 2 batches)
    }
}
