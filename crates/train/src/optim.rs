//! SGD with momentum — a restorable, *stateful* training component.
//!
//! In the paper's provenance taxonomy (§3.3) the optimizer is the canonical
//! "parametrized object **with** an internal state": its constructor
//! arguments (learning rate, momentum, weight decay) do not determine its
//! behaviour mid-training, because the momentum velocities accumulated so
//! far matter too. The provenance wrapper therefore serializes both the
//! config and a *state file* ([`Sgd::state_bytes`] / [`Sgd::load_state`]).

use std::collections::BTreeMap;

use mmlib_model::Model;
use mmlib_tensor::ser::{state_from_bytes, state_to_bytes};
use mmlib_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// SGD hyper-parameters — the constructor arguments in provenance terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables the velocity state).
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Per-tensor gradient L2-norm clip. Small-batch training of randomly
    /// initialized deep nets produces degenerate batch-norm statistics whose
    /// backward pass can blow gradients up to `inf`; clipping (a standard
    /// training-recipe component) keeps the update finite and direction-
    /// preserving. `None` disables clipping. Non-finite gradients are
    /// zeroed (their "direction" carries no information).
    #[serde(default)]
    pub max_grad_norm: Option<f32>,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig { lr: 0.01, momentum: 0.9, weight_decay: 0.0, max_grad_norm: None }
    }
}

/// SGD with momentum over a model's trainable parameters.
///
/// Velocities are keyed by parameter path, so an optimizer restored from a
/// state file keeps working as long as the model's trainable set is
/// unchanged — exactly the replay scenario of the provenance approach.
#[derive(Debug, Clone)]
pub struct Sgd {
    config: SgdConfig,
    velocity: BTreeMap<String, Tensor>,
}

impl Sgd {
    /// Creates an optimizer with empty velocity state.
    pub fn new(config: SgdConfig) -> Sgd {
        Sgd { config, velocity: BTreeMap::new() }
    }

    /// The hyper-parameters.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Applies one update step from the gradients accumulated in `model`.
    ///
    /// PyTorch-convention momentum: `v ← μ·v + (g + λ·w)`, `w ← w − lr·v`.
    pub fn step(&mut self, model: &mut Model) {
        let cfg = self.config;
        let velocity = &mut self.velocity;
        model.visit_trainable_mut(&mut |path, param, grad| {
            if let Some(max_norm) = cfg.max_grad_norm {
                clip_grad(grad, max_norm);
            }
            let pd = param.data_mut();
            let gd = grad.data();
            if cfg.momentum != 0.0 {
                let v = velocity
                    .entry(path)
                    .or_insert_with(|| Tensor::zeros(param_shape(gd.len())));
                // Re-shape lazily created velocities to the param's true shape
                // is unnecessary: only the flat data participates.
                let vd = v.data_mut();
                for i in 0..pd.len() {
                    let g = gd[i] + cfg.weight_decay * pd[i];
                    vd[i] = cfg.momentum * vd[i] + g;
                    pd[i] -= cfg.lr * vd[i];
                }
            } else {
                for i in 0..pd.len() {
                    let g = gd[i] + cfg.weight_decay * pd[i];
                    pd[i] -= cfg.lr * g;
                }
            }
        });
    }

    /// Serializes the internal state (momentum velocities) — the paper's
    /// "state file" for stateful wrapped objects.
    pub fn state_bytes(&self) -> Vec<u8> {
        state_to_bytes(
            self.velocity
                .iter()
                .map(|(k, v)| (k.as_str(), v))
                .collect::<Vec<_>>(),
        )
        .to_vec()
    }

    /// Restores the internal state written by [`Sgd::state_bytes`].
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), TensorError> {
        let entries = state_from_bytes(bytes)?;
        self.velocity = entries.into_iter().collect();
        Ok(())
    }

    /// Number of tracked velocity tensors (diagnostics).
    pub fn tracked_params(&self) -> usize {
        self.velocity.len()
    }
}

fn param_shape(len: usize) -> mmlib_tensor::Shape {
    mmlib_tensor::Shape::from(vec![len])
}

/// Which optimizer a training run uses — the serializable constructor
/// arguments the provenance wrapper records (class name + init args).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "class")]
pub enum OptimizerConfig {
    /// SGD with momentum.
    Sgd(SgdConfig),
    /// Adam.
    Adam(crate::adam::AdamConfig),
}

impl OptimizerConfig {
    /// The wrapper class name for this optimizer.
    pub fn class_name(&self) -> &'static str {
        match self {
            OptimizerConfig::Sgd(_) => "Sgd",
            OptimizerConfig::Adam(_) => "Adam",
        }
    }

    /// Instantiates a fresh optimizer with empty state.
    pub fn build(&self) -> AnyOptimizer {
        match self {
            OptimizerConfig::Sgd(c) => AnyOptimizer::Sgd(Sgd::new(*c)),
            OptimizerConfig::Adam(c) => AnyOptimizer::Adam(crate::adam::Adam::new(*c)),
        }
    }
}

impl From<SgdConfig> for OptimizerConfig {
    fn from(c: SgdConfig) -> Self {
        OptimizerConfig::Sgd(c)
    }
}

impl From<crate::adam::AdamConfig> for OptimizerConfig {
    fn from(c: crate::adam::AdamConfig) -> Self {
        OptimizerConfig::Adam(c)
    }
}

/// A trainer-agnostic optimizer handle (closed set, as the provenance
/// registry must be able to reconstruct every member by class name).
#[derive(Debug, Clone)]
pub enum AnyOptimizer {
    /// SGD with momentum.
    Sgd(Sgd),
    /// Adam.
    Adam(crate::adam::Adam),
}

impl AnyOptimizer {
    /// Applies one update step.
    pub fn step(&mut self, model: &mut Model) {
        match self {
            AnyOptimizer::Sgd(o) => o.step(model),
            AnyOptimizer::Adam(o) => o.step(model),
        }
    }

    /// The constructor-argument config (for provenance capture).
    pub fn config(&self) -> OptimizerConfig {
        match self {
            AnyOptimizer::Sgd(o) => OptimizerConfig::Sgd(*o.config()),
            AnyOptimizer::Adam(o) => OptimizerConfig::Adam(*o.config()),
        }
    }

    /// Serializes the internal state ("state file" content).
    pub fn state_bytes(&self) -> Vec<u8> {
        match self {
            AnyOptimizer::Sgd(o) => o.state_bytes(),
            AnyOptimizer::Adam(o) => o.state_bytes(),
        }
    }

    /// Restores the internal state.
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), TensorError> {
        match self {
            AnyOptimizer::Sgd(o) => o.load_state(bytes),
            AnyOptimizer::Adam(o) => o.load_state(bytes),
        }
    }
}

impl From<Sgd> for AnyOptimizer {
    fn from(o: Sgd) -> Self {
        AnyOptimizer::Sgd(o)
    }
}

impl From<crate::adam::Adam> for AnyOptimizer {
    fn from(o: crate::adam::Adam) -> Self {
        AnyOptimizer::Adam(o)
    }
}

/// Clips a gradient tensor to the given L2 norm; zeroes non-finite entries
/// first (an `inf`/NaN gradient carries no usable direction).
pub(crate) fn clip_grad(grad: &mut Tensor, max_norm: f32) {
    let mut sq = 0.0f64;
    let mut any_nonfinite = false;
    for v in grad.data().iter() {
        if v.is_finite() {
            sq += (*v as f64) * (*v as f64);
        } else {
            any_nonfinite = true;
        }
    }
    if any_nonfinite {
        for v in grad.data_mut().iter_mut() {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
    }
    let norm = sq.sqrt();
    if norm > max_norm as f64 {
        let scale = (max_norm as f64 / norm) as f32;
        grad.scale(scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_model::{ArchId, Ctx, Model};
    use mmlib_tensor::{ExecMode, Pcg32, Tensor};

    fn tiny_step(model: &mut Model, sgd: &mut Sgd, seed: u64) {
        let mut rng = Pcg32::seeded(seed);
        let x = Tensor::rand_normal([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let mut train_rng = Pcg32::seeded(seed + 1);
        let mut ctx = Ctx::train(&mut train_rng, ExecMode::Deterministic);
        let y = model.forward(x, &mut ctx);
        let (_, g) = crate::loss::cross_entropy(&y, &[1, 2]);
        model.zero_grad();
        model.backward(g, &mut ctx);
        sgd.step(model);
    }

    #[test]
    fn step_changes_trainable_params_only() {
        let mut model = Model::new_initialized(ArchId::TinyCnn, 1);
        model.set_classifier_only_trainable();
        let before = model.state_dict();
        let mut sgd = Sgd::new(SgdConfig::default());
        tiny_step(&mut model, &mut sgd, 10);
        let after = model.state_dict();
        for ((p, a), (_, b)) in before.iter().zip(&after) {
            if p.starts_with("fc") {
                assert!(!a.bit_eq(b), "{p} should have changed");
            } else {
                assert!(a.bit_eq(b), "{p} should be frozen");
            }
        }
    }

    #[test]
    fn momentum_state_round_trip_resumes_identically() {
        let run = |resume: bool| -> Model {
            let mut model = Model::new_initialized(ArchId::TinyCnn, 2);
            model.set_fully_trainable();
            let mut sgd = Sgd::new(SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4, max_grad_norm: None });
            tiny_step(&mut model, &mut sgd, 20);
            if resume {
                // Serialize optimizer + model, restore both, continue.
                let state = sgd.state_bytes();
                let sd = model.state_dict();
                let mut model2 = Model::new_initialized(ArchId::TinyCnn, 99);
                model2.set_fully_trainable();
                model2.load_state_dict(&sd).unwrap();
                let mut sgd2 = Sgd::new(*sgd.config());
                sgd2.load_state(&state).unwrap();
                tiny_step(&mut model2, &mut sgd2, 21);
                model2
            } else {
                tiny_step(&mut model, &mut sgd, 21);
                model
            }
        };
        let direct = run(false);
        let resumed = run(true);
        assert!(direct.models_equal(&resumed), "state restore must resume bit-identically");
    }

    #[test]
    fn zero_momentum_keeps_no_state() {
        let mut model = Model::new_initialized(ArchId::TinyCnn, 3);
        model.set_classifier_only_trainable();
        let mut sgd = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.0, max_grad_norm: None });
        tiny_step(&mut model, &mut sgd, 30);
        assert_eq!(sgd.tracked_params(), 0);
        assert!(sgd.state_bytes().len() < 32);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut model = Model::new_initialized(ArchId::TinyCnn, 4);
        model.set_fully_trainable();
        model.zero_grad();
        let before: f32 = model.state_dict().iter().map(|(_, t)| t.data().iter().map(|v| v.abs()).sum::<f32>()).sum();
        let mut sgd = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.1, max_grad_norm: None });
        sgd.step(&mut model);
        let after: f32 = model.state_dict().iter().map(|(_, t)| t.data().iter().map(|v| v.abs()).sum::<f32>()).sum();
        assert!(after < before);
    }
}
