//! Adam — a second stateful optimizer.
//!
//! The paper's wrapper design (§3.3) claims generality over "parametrized
//! objects with an internal state"; a registry with exactly one stateful
//! class would not test that claim. Adam carries *two* moment tensors per
//! parameter plus a step counter, so its state file is richer than SGD's —
//! and a provenance replay must restore all of it to reproduce bit-exactly.

use std::collections::BTreeMap;

use mmlib_model::Model;
use mmlib_tensor::ser::{state_from_bytes, state_to_bytes};
use mmlib_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Adam hyper-parameters (PyTorch defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight decay (classic Adam-style: added to the gradient).
    pub weight_decay: f32,
    /// Per-tensor gradient L2-norm clip (see [`crate::SgdConfig`]).
    #[serde(default)]
    pub max_grad_norm: Option<f32>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            max_grad_norm: None,
        }
    }
}

/// Adam over a model's trainable parameters.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    /// First moments, keyed by parameter path.
    m: BTreeMap<String, Tensor>,
    /// Second moments, keyed by parameter path.
    v: BTreeMap<String, Tensor>,
    /// Steps taken (drives bias correction).
    t: u64,
}

impl Adam {
    /// Creates an optimizer with empty moment state.
    pub fn new(config: AdamConfig) -> Adam {
        Adam { config, m: BTreeMap::new(), v: BTreeMap::new(), t: 0 }
    }

    /// The hyper-parameters.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update from the gradients accumulated in `model`.
    pub fn step(&mut self, model: &mut Model) {
        self.t += 1;
        let cfg = self.config;
        let t = self.t as f64;
        let bias1 = 1.0 - (cfg.beta1 as f64).powf(t);
        let bias2 = 1.0 - (cfg.beta2 as f64).powf(t);
        let m_map = &mut self.m;
        let v_map = &mut self.v;
        model.visit_trainable_mut(&mut |path, param, grad| {
            if let Some(max_norm) = cfg.max_grad_norm {
                crate::optim::clip_grad(grad, max_norm);
            }
            let pd = param.data_mut();
            let gd = grad.data();
            let flat = mmlib_tensor::Shape::from(vec![pd.len()]);
            let m = m_map.entry(path.clone()).or_insert_with(|| Tensor::zeros(flat.clone()));
            let v = v_map.entry(path).or_insert_with(|| Tensor::zeros(flat));
            let md = m.data_mut();
            let vd = v.data_mut();
            for i in 0..pd.len() {
                let g = gd[i] + cfg.weight_decay * pd[i];
                md[i] = cfg.beta1 * md[i] + (1.0 - cfg.beta1) * g;
                vd[i] = cfg.beta2 * vd[i] + (1.0 - cfg.beta2) * g * g;
                let m_hat = md[i] as f64 / bias1;
                let v_hat = vd[i] as f64 / bias2;
                pd[i] -= (cfg.lr as f64 * m_hat / (v_hat.sqrt() + cfg.eps as f64)) as f32;
            }
        });
    }

    /// Serializes the internal state (moments + step counter).
    pub fn state_bytes(&self) -> Vec<u8> {
        let step = Tensor::scalar(f32::from_bits(self.t as u32));
        let mut entries: Vec<(String, &Tensor)> = Vec::with_capacity(self.m.len() * 2 + 1);
        entries.push(("__step".to_string(), &step));
        for (k, v) in &self.m {
            entries.push((format!("m.{k}"), v));
        }
        for (k, v) in &self.v {
            entries.push((format!("v.{k}"), v));
        }
        state_to_bytes(entries.iter().map(|(n, t)| (n.as_str(), *t)).collect::<Vec<_>>()).to_vec()
    }

    /// Restores state written by [`Adam::state_bytes`].
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), TensorError> {
        let entries = state_from_bytes(bytes)?;
        self.m.clear();
        self.v.clear();
        self.t = 0;
        for (name, tensor) in entries {
            if name == "__step" {
                self.t = tensor.data()[0].to_bits() as u64;
            } else if let Some(key) = name.strip_prefix("m.") {
                self.m.insert(key.to_string(), tensor);
            } else if let Some(key) = name.strip_prefix("v.") {
                self.v.insert(key.to_string(), tensor);
            } else {
                return Err(TensorError::Corrupt(format!("unknown adam state entry {name}")));
            }
        }
        Ok(())
    }

    /// Number of tracked parameter tensors (diagnostics).
    pub fn tracked_params(&self) -> usize {
        self.m.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlib_model::{ArchId, Ctx, Model};
    use mmlib_tensor::{ExecMode, Pcg32, Tensor};

    fn tiny_step(model: &mut Model, adam: &mut Adam, seed: u64) {
        let mut rng = Pcg32::seeded(seed);
        let x = Tensor::rand_normal([2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let mut trng = Pcg32::seeded(seed + 1);
        let mut ctx = Ctx::train(&mut trng, ExecMode::Deterministic);
        let y = model.forward(x, &mut ctx);
        let (_, g) = crate::loss::cross_entropy(&y, &[1, 2]);
        model.zero_grad();
        model.backward(g, &mut ctx);
        adam.step(model);
    }

    #[test]
    fn step_moves_trainable_params_and_counts() {
        let mut model = Model::new_initialized(ArchId::TinyCnn, 1);
        model.set_classifier_only_trainable();
        let before = model.state_dict();
        let mut adam = Adam::new(AdamConfig::default());
        tiny_step(&mut model, &mut adam, 10);
        assert_eq!(adam.steps(), 1);
        let after = model.state_dict();
        let changed = before.iter().zip(&after).filter(|((_, a), (_, b))| !a.bit_eq(b)).count();
        assert!(changed >= 1);
        for ((p, a), (_, b)) in before.iter().zip(&after) {
            if !p.starts_with("fc") {
                assert!(a.bit_eq(b), "{p} should be frozen");
            }
        }
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let run = |resume: bool| -> Model {
            let mut model = Model::new_initialized(ArchId::TinyCnn, 2);
            model.set_fully_trainable();
            let mut adam = Adam::new(AdamConfig { lr: 0.01, ..Default::default() });
            tiny_step(&mut model, &mut adam, 20);
            if resume {
                let state = adam.state_bytes();
                let sd = model.state_dict();
                let mut model2 = Model::new_initialized(ArchId::TinyCnn, 99);
                model2.set_fully_trainable();
                model2.load_state_dict(&sd).unwrap();
                let mut adam2 = Adam::new(*adam.config());
                adam2.load_state(&state).unwrap();
                assert_eq!(adam2.steps(), 1);
                tiny_step(&mut model2, &mut adam2, 21);
                model2
            } else {
                tiny_step(&mut model, &mut adam, 21);
                model
            }
        };
        assert!(run(false).models_equal(&run(true)), "bias correction depends on the restored step");
    }

    #[test]
    fn bias_correction_differs_from_uncorrected() {
        // Same grads, fresh vs step-10 optimizer state: updates must differ
        // (the step counter matters, so it must be part of the state file).
        let mut fresh = Model::new_initialized(ArchId::TinyCnn, 3);
        fresh.set_fully_trainable();
        let mut warmed = fresh.duplicate();
        warmed.set_fully_trainable();

        let mut a_fresh = Adam::new(AdamConfig::default());
        let mut a_warm = Adam::new(AdamConfig::default());
        for s in 0..3 {
            tiny_step(&mut warmed, &mut a_warm, 40 + s);
        }
        // Reset warmed model params to fresh, keep warm optimizer state.
        warmed.copy_state_from(&fresh);
        tiny_step(&mut fresh, &mut a_fresh, 50);
        tiny_step(&mut warmed, &mut a_warm, 50);
        assert!(!fresh.models_equal(&warmed));
    }

    #[test]
    fn corrupt_state_is_rejected() {
        let mut adam = Adam::new(AdamConfig::default());
        let entries = [("bogus.key".to_string(), Tensor::zeros([2]))];
        let bytes =
            state_to_bytes(entries.iter().map(|(n, t)| (n.as_str(), t)).collect::<Vec<_>>());
        assert!(adam.load_state(&bytes).is_err());
    }
}
