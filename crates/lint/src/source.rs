//! Source-file model: lexed text plus the structure the rules query —
//! which crate a file belongs to, which lines are test-gated, and which
//! lines carry `mmlib-lint:` pragmas.

use crate::lexer::{lex, Token, TokenKind};
use crate::pragma::{parse_pragmas, Pragma};

/// Where a file sits in the workspace layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` or the facade `src/lib.rs` — library code.
    Lib,
    /// `crates/<name>/tests/**` — integration tests (exempt from most rules,
    /// scanned only for cross-reference rules like X1).
    Test,
    /// `crates/<name>/benches/**`, `examples/**`, `src/bin/**` — exempt.
    Other,
}

/// One lexed source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate the file belongs to (`"net"`, `"tensor"`, ... or `"mmlib"` for
    /// the facade).
    pub crate_name: String,
    pub kind: FileKind,
    pub tokens: Vec<Token>,
    /// Source lines, for snippets in findings.
    pub lines: Vec<String>,
    /// Line-level and file-level pragmas found in comments.
    pub pragmas: Vec<Pragma>,
    /// Half-open 1-based line ranges that are `#[cfg(test)]`/`#[test]`-gated.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Builds a file model from its workspace-relative path and text.
    pub fn new(path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let (crate_name, kind) = classify(path);
        let pragmas = parse_pragmas(&tokens);
        let test_ranges = find_test_ranges(&tokens);
        SourceFile {
            path: path.to_string(),
            crate_name,
            kind,
            tokens,
            lines: text.lines().map(|l| l.to_string()).collect(),
            pragmas,
            test_ranges,
        }
    }

    /// Whether a 1-based line is inside a `#[cfg(test)]`-gated item.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.kind != FileKind::Lib
            || self.test_ranges.iter().any(|&(start, end)| line >= start && line < end)
    }

    /// The source line (1-based), trimmed, for finding snippets.
    pub fn snippet(&self, line: usize) -> String {
        self.lines.get(line.wrapping_sub(1)).map(|l| l.trim().to_string()).unwrap_or_default()
    }

    /// The code tokens (comments stripped), with their original indices.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens.iter().enumerate().filter(|(_, t)| !t.is_comment())
    }
}

/// Derives (crate name, file kind) from a workspace-relative path.
fn classify(path: &str) -> (String, FileKind) {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() >= 3 {
        let crate_name = parts[1].to_string();
        let kind = match parts[2] {
            "src" if parts.get(3) == Some(&"bin") => FileKind::Other,
            "src" => FileKind::Lib,
            "tests" => FileKind::Test,
            _ => FileKind::Other,
        };
        return (crate_name, kind);
    }
    if parts.first() == Some(&"src") {
        let kind = if parts.get(1) == Some(&"bin") { FileKind::Other } else { FileKind::Lib };
        return ("mmlib".to_string(), kind);
    }
    if parts.first() == Some(&"tests") {
        return ("mmlib".to_string(), FileKind::Test);
    }
    ("mmlib".to_string(), FileKind::Other)
}

/// Finds line ranges of items gated by `#[cfg(test)]` / `#[cfg(any(.., test,
/// ..))]` / `#[test]` / `#[bench]`. The range covers the attribute through
/// the end of the item it decorates (its matched `{...}` block, or the `;`
/// for out-of-line items).
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[') {
            if let Some((is_test, attr_end)) = scan_attribute(&code, i + 1) {
                if is_test {
                    let start_line = code[i].line;
                    let end_line = item_end_line(&code, attr_end);
                    ranges.push((start_line, end_line));
                    // Skip past the whole gated item so nested attributes
                    // inside it are not re-scanned.
                    while i < code.len() && code[i].line < end_line {
                        i += 1;
                    }
                    continue;
                }
                i = attr_end;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Scans a `[...]` attribute starting at its `[`; returns whether it gates
/// test code and the index one past the closing `]`.
fn scan_attribute(code: &[&Token], open: usize) -> Option<(bool, usize)> {
    let mut depth = 0usize;
    let mut saw_cfg_or_test = false;
    let mut is_test = false;
    let mut j = open;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((is_test, j + 1));
            }
        } else if t.kind == TokenKind::Ident {
            if t.text == "cfg" || t.text == "cfg_attr" {
                saw_cfg_or_test = true;
            }
            // `#[test]`, `#[bench]` directly, or `test` anywhere inside a
            // `cfg(...)` condition (covers `any(test, feature = "...")`).
            if (t.text == "test" || t.text == "bench") && (saw_cfg_or_test || j == open + 1) {
                is_test = true;
            }
        }
        j += 1;
    }
    None
}

/// From the token after an attribute, finds the line one past the end of
/// the decorated item (skipping further attributes and doc comments).
fn item_end_line(code: &[&Token], mut i: usize) -> usize {
    // Skip stacked attributes.
    while i + 1 < code.len() && code[i].is_punct('#') && code[i + 1].is_punct('[') {
        let mut depth = 0usize;
        i += 1;
        while i < code.len() {
            if code[i].is_punct('[') {
                depth += 1;
            } else if code[i].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // The item body: everything until a `;` at depth 0 or the close of the
    // first `{...}` block.
    let mut depth = 0usize;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return t.line + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return t.line + 1;
        }
        i += 1;
    }
    code.last().map(|t| t.line + 1).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/net/src/server.rs"), ("net".to_string(), FileKind::Lib));
        assert_eq!(classify("crates/net/tests/loopback.rs"), ("net".to_string(), FileKind::Test));
        assert_eq!(
            classify("crates/bench/src/bin/repro.rs"),
            ("bench".to_string(), FileKind::Other)
        );
        assert_eq!(classify("src/lib.rs"), ("mmlib".to_string(), FileKind::Lib));
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn lib2() {}\n";
        let f = SourceFile::new("crates/net/src/x.rs", src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_test_fn_is_exempt() {
        let src = "#[cfg(test)]\npub fn helper() {\n  body();\n}\nfn real() {}\n";
        let f = SourceFile::new("crates/net/src/x.rs", src);
        assert!(f.in_test_code(3));
        assert!(!f.in_test_code(5));
    }

    #[test]
    fn test_files_are_fully_exempt() {
        let f = SourceFile::new("crates/net/tests/t.rs", "fn t() { x.unwrap(); }");
        assert!(f.in_test_code(1));
    }

    #[test]
    fn cfg_any_with_test_is_exempt() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() {} }\nfn real() {}\n";
        let f = SourceFile::new("crates/net/src/x.rs", src);
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn non_test_cfg_is_not_exempt() {
        let src = "#[cfg(unix)]\nfn u() { body(); }\n";
        let f = SourceFile::new("crates/net/src/x.rs", src);
        assert!(!f.in_test_code(2));
    }
}
