//! Structural pass: recovers the item tree (fn/impl/mod boundaries) from
//! the token stream by brace matching.
//!
//! This is deliberately not a parser. The concurrency rules (L1/H1/G1)
//! need three structural facts a flat token scan cannot give them:
//!
//! 1. **Function extents** — which tokens belong to which function body,
//!    so held-lock state never leaks across function boundaries.
//! 2. **Qualified names** — `DocStore::stage` vs `FileStore::stage`, so
//!    findings read well (call *edges* are still keyed by bare name).
//! 3. **Block nesting** — the innermost `{...}` enclosing a token, which
//!    is the guard-drop scope for L1/H1 and the balance scope for G1's
//!    `scope=block` pairs.
//!
//! The recovery is resilient by construction: braces inside strings and
//! comments are already hidden by the lexer, and an unbalanced file
//! degrades to shorter extents rather than a crash.

use crate::lexer::{Token, TokenKind};

/// One function item (free fn, method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name (`"flush_out"`, `"stage"`).
    pub name: String,
    /// Context-qualified name (`"DocStore::stage"`), for messages.
    pub qualname: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token indices of the body's `{` and `}` (`None` for trait-method
    /// declarations that end in `;`).
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// Whether `idx` falls inside this function's body braces.
    pub fn contains(&self, idx: usize) -> bool {
        self.body.is_some_and(|(open, close)| idx > open && idx < close)
    }
}

/// Extracts every function in the file, in source order, with its
/// impl/mod context. Nested functions are reported as their own items;
/// callers that walk a body should mask nested extents (see
/// [`nested_extents`]).
pub fn functions(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    // (context name, token index of the context's closing `}`)
    let mut ctx: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while ctx.last().is_some_and(|&(_, close)| i > close) {
            ctx.pop();
        }
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_ident("impl") || t.is_ident("mod") || t.is_ident("trait") {
            if let Some((name, open)) = scan_context_header(tokens, i) {
                if let Some(close) = matching(tokens, open, '{', '}') {
                    ctx.push((name, close));
                }
                i += 1;
                continue;
            }
        }
        if t.is_ident("fn") {
            if let Some(item) = scan_fn(tokens, i, &ctx) {
                i += 1; // keep scanning inside the body: nested fns count too
                out.push(item);
                continue;
            }
        }
        i += 1;
    }
    out
}

/// For a function item, the body extents of every other function nested
/// strictly inside it — tokens a facts pass over the outer fn must skip.
pub fn nested_extents(item: &FnItem, all: &[FnItem]) -> Vec<(usize, usize)> {
    let Some((open, close)) = item.body else { return Vec::new() };
    all.iter()
        .filter_map(|f| f.body.map(|b| (f.sig_start, b.1)))
        .filter(|&(start, end)| start > open && end < close)
        .collect()
}

/// Finds the token index of the delimiter matching `tokens[open]`
/// (which must be `open_c`), honoring nesting. `None` if unbalanced.
pub fn matching(tokens: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    debug_assert!(tokens[open].is_punct(open_c));
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// The innermost `{...}` pair within `(lo, hi)` that strictly contains
/// `idx`, or `None` if `idx` sits directly in the outer range.
pub fn enclosing_block(
    tokens: &[Token],
    lo: usize,
    hi: usize,
    idx: usize,
) -> Option<(usize, usize)> {
    let mut stack: Vec<usize> = Vec::new();
    let mut best: Option<(usize, usize)> = None;
    for (j, t) in tokens.iter().enumerate().take(hi.min(tokens.len())).skip(lo + 1) {
        if t.is_punct('{') {
            stack.push(j);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                if open < idx && idx < j && best.is_none_or(|(o, _)| open > o) {
                    best = Some((open, j));
                }
            }
        }
    }
    best
}

/// Scans an `impl`/`mod`/`trait` header starting at its keyword. Returns
/// the context name and the index of the body's `{`, or `None` when the
/// item has no body (`mod foo;`) or the keyword is in type position.
fn scan_context_header(tokens: &[Token], kw: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut name: Option<String> = None;
    let mut j = kw + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        if t.is_punct('{') && angle <= 0 {
            return name.map(|n| (n, j));
        }
        if t.is_punct(';') || t.is_punct('}') || t.is_punct('(') {
            return None; // `mod foo;`, or not really an item header
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.kind == TokenKind::Ident && angle <= 0 {
            match t.text.as_str() {
                // `impl Display for Opcode` — the implementing type names
                // the context, so restart collection after `for`.
                "for" => name = None,
                "where" | "dyn" | "mut" | "ref" | "const" | "unsafe" | "pub" => {}
                _ => {
                    if name.is_none() {
                        name = Some(t.text.clone());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Scans a `fn` item starting at the keyword. Returns `None` when `fn`
/// is in type position (`as fn(u8)`) rather than an item.
fn scan_fn(tokens: &[Token], kw: usize, ctx: &[(String, usize)]) -> Option<FnItem> {
    // The name is the next code token; `fn(` is a function-pointer type.
    let mut j = kw + 1;
    while j < tokens.len() && tokens[j].is_comment() {
        j += 1;
    }
    let name_tok = tokens.get(j)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Find the body `{` (or terminating `;`) at zero delimiter depth.
    let (mut paren, mut bracket) = (0i32, 0i32);
    let mut k = j + 1;
    let body = loop {
        let t = tokens.get(k)?;
        if !t.is_comment() {
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if t.is_punct('{') {
                    break Some((k, matching(tokens, k, '{', '}')?));
                }
                if t.is_punct(';') {
                    break None;
                }
            }
        }
        k += 1;
    };
    let qual: Vec<&str> = ctx.iter().map(|(n, _)| n.as_str()).chain([name_tok.text.as_str()]).collect();
    Some(FnItem {
        qualname: qual.join("::"),
        name,
        line: tokens[kw].line,
        sig_start: kw,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn names(src: &str) -> Vec<(String, String)> {
        functions(&lex(src)).into_iter().map(|f| (f.name, f.qualname)).collect()
    }

    #[test]
    fn free_fns_and_methods() {
        let got = names("fn a() {}\nimpl Server { fn b(&self) {} }\nfn c() {}");
        assert_eq!(
            got,
            vec![
                ("a".into(), "a".into()),
                ("b".into(), "Server::b".into()),
                ("c".into(), "c".into()),
            ]
        );
    }

    #[test]
    fn nested_impls_and_mods() {
        let src = "mod outer {\n  impl<T: Ord> Codec<T> {\n    fn enc(&self) {}\n  }\n  \
                   impl Display for Opcode {\n    fn fmt(&self) {}\n  }\n}\nfn after() {}";
        let got = names(src);
        assert_eq!(
            got,
            vec![
                ("enc".into(), "outer::Codec::enc".into()),
                ("fmt".into(), "outer::Opcode::fmt".into()),
                ("after".into(), "after".into()),
            ]
        );
    }

    #[test]
    fn cfg_test_mod_fns_are_still_items() {
        // The structural pass reports them; rule layers consult
        // `SourceFile::in_test_code` to exempt them.
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { lib(); }\n}";
        let got = names(src);
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].1, "tests::t");
    }

    #[test]
    fn nested_fn_bodies_are_separate_items() {
        let src = "fn outer() {\n  fn inner() { x.lock(); }\n  other();\n}";
        let fns = functions(&lex(src));
        assert_eq!(fns.len(), 2);
        let outer = &fns[0];
        let masks = nested_extents(outer, &fns);
        assert_eq!(masks.len(), 1);
        assert!(masks[0].0 > outer.body.unwrap().0);
    }

    #[test]
    fn closures_belong_to_the_enclosing_fn() {
        let src = "fn f() { spawn(move || { g(); }); }";
        let fns = functions(&lex(src));
        assert_eq!(fns.len(), 1);
        assert!(nested_extents(&fns[0], &fns).is_empty());
    }

    #[test]
    fn raw_strings_with_braces_do_not_confuse_matching() {
        let src = "fn f() { let s = r#\"{ not a brace }\"#; }\nfn g() {}";
        let got = names(src);
        assert_eq!(got, vec![("f".into(), "f".into()), ("g".into(), "g".into())]);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let fns = functions(&lex("trait T { fn decl(&self); fn def(&self) {} }"));
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_none());
        assert!(fns[1].body.is_some());
        assert_eq!(fns[0].qualname, "T::decl");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let got = names("fn real(cb: fn(u8) -> u8) {}\n");
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn where_clauses_and_generics_in_signatures() {
        let src = "fn f<T>(x: T) -> Vec<u8> where T: Into<Vec<u8>> { body() }";
        let fns = functions(&lex(src));
        assert_eq!(fns.len(), 1);
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn enclosing_block_finds_innermost() {
        let toks = lex("fn f() { a(); { b(); { c(); } } }");
        let fns = functions(&toks);
        let (open, close) = fns[0].body.unwrap();
        let c_idx = toks.iter().position(|t| t.is_ident("c")).unwrap();
        let (blo, bhi) = enclosing_block(&toks, open, close, c_idx).unwrap();
        // Innermost block holds only `c();`.
        assert!(blo < c_idx && c_idx < bhi);
        let b_idx = toks.iter().position(|t| t.is_ident("b")).unwrap();
        assert!(!(blo < b_idx && b_idx < bhi));
    }
}
