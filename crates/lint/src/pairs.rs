//! G1 pair manifest: declared paired-accounting APIs.
//!
//! The manifest (`lint-pairs.txt` at the workspace root) lists resource
//! acquire/release call pairs the tree must keep balanced:
//!
//! ```text
//! # pair <crate> <acquire-fn> <release-fn> [owner=f1,f2] [scope=fn|block]
//! pair net admit finish_inflight owner=handle_frame
//! pair net swap_remove release_pending scope=block
//! pair store stage_write commit_staged owner=stage
//! ```
//!
//! * `owner=` names functions allowed to call the acquire side without a
//!   matching release — they hand the obligation off (to a connection
//!   state, a returned token, ...).
//! * `scope=fn` (the default) requires a function that calls the acquire
//!   side to also call the release side, with no `return` or `?` between
//!   them (a `?` directly on the acquire call itself is exempt — the
//!   resource was never obtained on that edge).
//! * `scope=block` requires the release call inside the same `{...}`
//!   block as each acquire call — for cleanup idioms like
//!   `let dead = conns.swap_remove(i); release_pending(state, &dead);`
//!   where the pairing is positional, not function-wide.

/// Balance-checking granularity for one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairScope {
    /// Release required somewhere in the same function, no early exit
    /// between acquire and release.
    Fn,
    /// Release required in the innermost block holding the acquire call.
    Block,
}

/// One declared acquire/release pair.
#[derive(Debug, Clone)]
pub struct Pair {
    /// Crate the pair applies to (`"net"`, `"store"`).
    pub krate: String,
    pub acquire: String,
    pub release: String,
    /// Functions allowed to acquire without releasing.
    pub owners: Vec<String>,
    pub scope: PairScope,
}

/// The parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Pairs {
    pub pairs: Vec<Pair>,
}

impl Pairs {
    /// An empty manifest (G1 checks nothing).
    pub fn empty() -> Pairs {
        Pairs::default()
    }

    /// Parses manifest text; `#` starts a comment. `source` names the
    /// file for error messages.
    pub fn parse(text: &str, source: &str) -> Result<Pairs, String> {
        let mut pairs = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |msg: &str| format!("{source}:{}: {msg}", i + 1);
            if parts.next() != Some("pair") {
                return Err(err("expected `pair <crate> <acquire> <release> [...]`"));
            }
            let (Some(krate), Some(acquire), Some(release)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(err("expected `pair <crate> <acquire> <release> [...]`"));
            };
            let mut owners = Vec::new();
            let mut scope = PairScope::Fn;
            for opt in parts {
                if let Some(list) = opt.strip_prefix("owner=") {
                    owners.extend(list.split(',').map(|s| s.trim().to_string()));
                } else if let Some(s) = opt.strip_prefix("scope=") {
                    scope = match s {
                        "fn" => PairScope::Fn,
                        "block" => PairScope::Block,
                        other => return Err(err(&format!("unknown scope `{other}`"))),
                    };
                } else {
                    return Err(err(&format!("unknown option `{opt}`")));
                }
            }
            pairs.push(Pair {
                krate: krate.to_string(),
                acquire: acquire.to_string(),
                release: release.to_string(),
                owners,
                scope,
            });
        }
        Ok(Pairs { pairs })
    }

    /// Loads the manifest file; an absent file is an empty manifest, so
    /// repos without declared pairs pay nothing.
    pub fn load(path: &std::path::Path) -> Result<Pairs, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Pairs::parse(&text, &path.display().to_string()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Pairs::empty()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_manifest() {
        let text = "# comment\n\
                    pair net admit finish_inflight owner=handle_frame\n\
                    pair net swap_remove release_pending scope=block\n\
                    pair store stage_write commit_staged owner=a,b\n";
        let p = Pairs::parse(text, "t").unwrap();
        assert_eq!(p.pairs.len(), 3);
        assert_eq!(p.pairs[0].owners, vec!["handle_frame"]);
        assert_eq!(p.pairs[0].scope, PairScope::Fn);
        assert_eq!(p.pairs[1].scope, PairScope::Block);
        assert_eq!(p.pairs[2].owners, vec!["a", "b"]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Pairs::parse("pear net a b", "t").is_err());
        assert!(Pairs::parse("pair net a", "t").is_err());
        assert!(Pairs::parse("pair net a b scope=weird", "t").is_err());
        assert!(Pairs::parse("pair net a b frobnicate=1", "t").is_err());
    }

    #[test]
    fn empty_and_comment_only_are_fine() {
        assert!(Pairs::parse("", "t").unwrap().pairs.is_empty());
        assert!(Pairs::parse("# nothing\n\n", "t").unwrap().pairs.is_empty());
    }
}
