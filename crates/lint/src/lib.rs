//! mmlib-lint — workspace static analysis for the mmlib repository.
//!
//! A zero-dependency, span-aware lint built on a hand-rolled Rust lexer
//! (the offline workspace has no crate registry, so `syn` is not an
//! option — and token-level analysis is all these rules need). It
//! enforces invariants rustc and clippy cannot see:
//!
//! - **D1** determinism hygiene: no wall-clock or OS-entropy sources in
//!   the deterministic crates (`tensor`, `train`, `model`).
//! - **P1** panic-freedom: no `unwrap`/`expect`/`panic!` family in
//!   library code of the core/net/store/tensor/dist/obs crates.
//! - **C1** truncating-cast audit on net/store wire paths.
//! - **F1** `#![forbid(unsafe_code)]` in every non-shim crate root.
//! - **X1** protocol cross-check: every opcode has a server dispatch
//!   arm, client plumbing, and test coverage; error replies must be
//!   asserted on, not merely mentioned.
//! - **M1** metric-taxonomy check: every `mmlib_*` metric name is
//!   declared (once, snake_case) in the central taxonomy and used.
//!
//! On top of the token layer sits a **structural pass** ([`structure`],
//! [`callgraph`]): item-tree recovery by brace matching, guard-scope
//! tracking, and per-crate call edges, powering the concurrency rules:
//!
//! - **L1** lock-order analysis: acquisition-order cycles and double
//!   acquisition (direct or across intra-crate call edges).
//! - **H1** I/O while a lock guard is live in scope.
//! - **G1** guard-balance for paired-accounting APIs declared in
//!   `lint-pairs.txt` (acquire/release call pairs, with owners).
//!
//! Suppression is explicit and budgeted: `// mmlib-lint: allow(RULE,
//! reason)` pragmas are counted against the committed ratchet file
//! `lint-budget.txt`, which may only go down.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod pairs;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod source;
pub mod structure;

pub use engine::{Budget, Report, Workspace};
pub use pairs::Pairs;
pub use rules::Violation;
