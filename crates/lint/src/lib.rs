//! mmlib-lint — workspace static analysis for the mmlib repository.
//!
//! A zero-dependency, span-aware lint built on a hand-rolled Rust lexer
//! (the offline workspace has no crate registry, so `syn` is not an
//! option — and token-level analysis is all these rules need). It
//! enforces invariants rustc and clippy cannot see:
//!
//! - **D1** determinism hygiene: no wall-clock or OS-entropy sources in
//!   the deterministic crates (`tensor`, `train`, `model`).
//! - **P1** panic-freedom: no `unwrap`/`expect`/`panic!` family in
//!   library code of the core/net/store/tensor/dist/obs crates.
//! - **C1** truncating-cast audit on net/store wire paths.
//! - **F1** `#![forbid(unsafe_code)]` in every non-shim crate root.
//! - **X1** protocol cross-check: every opcode has a server dispatch
//!   arm, client plumbing, and test coverage.
//! - **M1** metric-taxonomy check: every `mmlib_*` metric name is
//!   declared (once, snake_case) in the central taxonomy and used.
//!
//! Suppression is explicit and budgeted: `// mmlib-lint: allow(RULE,
//! reason)` pragmas are counted against the committed ratchet file
//! `lint-budget.txt`, which may only go down.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{Budget, Report, Workspace};
pub use rules::Violation;
