//! The analysis engine: workspace discovery, rule orchestration, pragma
//! suppression, and the ratchet budget.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::pairs::Pairs;
use crate::pragma::PragmaScope;
use crate::rules::{c1, d1, f1, g1, h1, l1, m1, p1, x1, Violation};
use crate::source::{FileKind, SourceFile};

/// Crate directories never scanned: vendored dependency shims mirror
/// external APIs. The lint *does* scan itself (its self-metrics must stay
/// inside the M1 taxonomy); only its deliberately-bad rule fixtures are
/// excluded, by the `fixtures` directory skip in [`collect_rs`].
const EXCLUDED_CRATES: &[&str] = &["shims"];

/// A loaded workspace: every scannable file, lexed once.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads the real workspace under `root` (the directory holding the
    /// workspace `Cargo.toml`). Scans `crates/*/src/**` and
    /// `crates/*/tests/**` plus the facade `src/`.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if EXCLUDED_CRATES.contains(&name) {
                continue;
            }
            for sub in ["src", "tests"] {
                collect_rs(&dir.join(sub), root, &mut files)?;
            }
        }
        collect_rs(&root.join("src"), root, &mut files)?;
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory (path, text) pairs — the fixture
    /// and mutation-test entry point.
    pub fn from_memory(files: Vec<(String, String)>) -> Workspace {
        let files = files.iter().map(|(p, t)| SourceFile::new(p, t)).collect();
        Workspace { files }
    }

    /// Runs every rule with an empty pair manifest (G1 checks nothing).
    pub fn check(&self, budget: &Budget) -> Report {
        self.check_full(budget, &Pairs::empty())
    }

    /// Runs every rule and applies pragmas. Returns the full report.
    pub fn check_full(&self, budget: &Budget, pairs: &Pairs) -> Report {
        let mut raw = Vec::new();
        for f in &self.files {
            if f.kind == FileKind::Lib {
                d1::check(f, &mut raw);
                p1::check(f, &mut raw);
                c1::check(f, &mut raw);
                if f.path.ends_with("/src/lib.rs") || f.path == "src/lib.rs" {
                    f1::check(f, &mut raw);
                }
            }
        }
        x1::check(&self.files, &mut raw);
        m1::check(&self.files, &mut raw);
        self.check_structural(pairs, &mut raw);
        self.apply_pragmas(raw, budget)
    }

    /// The structural rules (L1/H1/G1): builds one concurrency model per
    /// relevant crate and runs each rule family over it.
    fn check_structural(&self, pairs: &Pairs, raw: &mut Vec<Violation>) {
        let mut crates: Vec<&str> = l1::CONCURRENT_CRATES.to_vec();
        for p in &pairs.pairs {
            if !crates.contains(&p.krate.as_str()) {
                crates.push(&p.krate);
            }
        }
        for krate in crates {
            let files: Vec<(usize, &SourceFile)> = self
                .files
                .iter()
                .enumerate()
                .filter(|(_, f)| f.crate_name == krate && f.kind == FileKind::Lib)
                .collect();
            if files.is_empty() {
                continue;
            }
            let model = crate::callgraph::build(krate, &files);
            if l1::CONCURRENT_CRATES.contains(&krate) {
                l1::check(&model, &files, raw);
                h1::check(&model, &files, raw);
            }
            g1::check(&model, &files, pairs, raw);
        }
    }

    /// Splits raw findings into active violations and pragma-suppressed
    /// ones; adds meta findings for malformed/stale pragmas and a blown
    /// ratchet budget.
    fn apply_pragmas(&self, raw: Vec<Violation>, budget: &Budget) -> Report {
        let mut violations = Vec::new();
        let mut allowed = Vec::new();
        // (path, pragma index) -> times used
        let mut used: BTreeMap<(String, usize), usize> = BTreeMap::new();

        for v in raw {
            let file = self.files.iter().find(|f| f.path == v.path);
            let suppressor = file.and_then(|f| {
                f.pragmas.iter().enumerate().find(|(_, p)| {
                    p.error.is_none()
                        && p.rule == v.rule
                        && match p.scope {
                            PragmaScope::File => true,
                            // A trailing comment suppresses its own line; a
                            // standalone comment suppresses the next line.
                            PragmaScope::Line => p.line == v.line || p.line + 1 == v.line,
                        }
                })
            });
            match suppressor {
                Some((idx, _)) => {
                    *used.entry((v.path.clone(), idx)).or_default() += 1;
                    allowed.push(v);
                }
                None => violations.push(v),
            }
        }

        // Pragma hygiene: malformed pragmas and stale (unused) allows are
        // themselves violations — the ratchet must never rot.
        let mut allow_counts: BTreeMap<String, usize> = BTreeMap::new();
        for f in &self.files {
            for (idx, p) in f.pragmas.iter().enumerate() {
                if let Some(err) = &p.error {
                    violations.push(Violation {
                        rule: "LINT",
                        path: f.path.clone(),
                        line: p.line,
                        col: 0,
                        message: format!("malformed mmlib-lint pragma: {err}"),
                        snippet: f.snippet(p.line),
                    });
                    continue;
                }
                if used.contains_key(&(f.path.clone(), idx)) {
                    *allow_counts.entry(p.rule.clone()).or_default() += 1;
                } else {
                    violations.push(Violation {
                        rule: "LINT",
                        path: f.path.clone(),
                        line: p.line,
                        col: 0,
                        message: format!(
                            "stale pragma: allow({}, ...) suppresses nothing — remove it \
                             and ratchet the budget down",
                            p.rule
                        ),
                        snippet: f.snippet(p.line),
                    });
                }
            }
        }

        // Ratchet: the number of used allows per rule may not exceed the
        // committed budget.
        for (rule, count) in &allow_counts {
            let cap = budget.limit(rule);
            if *count > cap {
                violations.push(Violation {
                    rule: "LINT",
                    path: budget.source.clone(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "ratchet exceeded for {rule}: {count} allow pragmas in the tree \
                         but the committed budget is {cap} — fix the new sites instead \
                         of annotating them"
                    ),
                    snippet: String::new(),
                });
            }
        }

        // Byte-stable output: findings are sorted, not in rule-emission
        // order, so `--json` and the ratchet do not depend on which rule
        // family ran first (or on filesystem enumeration order).
        let sort_key = |v: &Violation| {
            (v.path.clone(), v.line, v.col, v.rule, v.message.clone())
        };
        violations.sort_by_key(sort_key);
        allowed.sort_by_key(sort_key);

        let files_scanned = self.files.len();
        Report { violations, allowed, allow_counts, files_scanned }
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // Rule fixtures are deliberately-bad code; scanning them would
            // report their planted violations against the real tree.
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile::new(&rel, &text));
        }
    }
    Ok(())
}

/// The committed ratchet budget: per-rule caps on allow pragmas.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    limits: BTreeMap<String, usize>,
    /// Where the budget came from, for error messages.
    pub source: String,
}

impl Budget {
    /// An all-zero budget (no pragma allowed anywhere).
    pub fn zero() -> Budget {
        Budget { limits: BTreeMap::new(), source: "<zero budget>".to_string() }
    }

    /// Parses `RULE COUNT` lines; `#` starts a comment.
    pub fn parse(text: &str, source: &str) -> Result<Budget, String> {
        let mut limits = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(count), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("{source}:{}: expected `RULE COUNT`", i + 1));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("{source}:{}: bad count `{count}`", i + 1))?;
            limits.insert(rule.to_uppercase(), count);
        }
        Ok(Budget { limits, source: source.to_string() })
    }

    /// Loads the budget file, or an all-zero budget when it is absent.
    pub fn load(path: &Path) -> Result<Budget, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Budget::parse(&text, &path.display().to_string()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Budget::zero()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    pub fn limit(&self, rule: &str) -> usize {
        self.limits.get(rule).copied().unwrap_or(0)
    }

    /// Renders the budget file content for `--update-budget`.
    pub fn render(counts: &BTreeMap<String, usize>) -> String {
        let mut out = String::from(
            "# mmlib-lint ratchet budget: allow-pragma count per rule.\n\
             # This file may only go DOWN. check.sh fails if the tree needs more\n\
             # allows than budgeted here; when you fix an annotated site, lower\n\
             # the number (or run `mmlib-lint --workspace --update-budget`).\n",
        );
        for (rule, count) in counts {
            out.push_str(&format!("{rule} {count}\n"));
        }
        out
    }
}

/// The outcome of one analysis run.
pub struct Report {
    /// Active violations (pragma-suppressed ones excluded).
    pub violations: Vec<Violation>,
    /// Findings suppressed by a valid pragma.
    pub allowed: Vec<Violation>,
    /// Used allow pragmas per rule (the ratchet's measured side).
    pub allow_counts: BTreeMap<String, usize>,
    pub files_scanned: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}
