//! mmlib-lint CLI.
//!
//! ```text
//! mmlib-lint --workspace [--root DIR] [--budget FILE] [--pairs FILE]
//!            [--rule ID] [--json] [--metrics] [--update-budget]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mmlib_lint::engine::{Budget, Workspace};
use mmlib_lint::pairs::Pairs;
use mmlib_lint::report::{render_json, render_self_metrics, render_text};

const USAGE: &str = "usage: mmlib-lint --workspace [--root DIR] [--budget FILE] [--pairs FILE] \
                     [--rule ID] [--json] [--metrics] [--update-budget]";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("mmlib-lint: error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut workspace = false;
    let mut json = false;
    let mut metrics = false;
    let mut update_budget = false;
    let mut root: Option<PathBuf> = None;
    let mut budget_path: Option<PathBuf> = None;
    let mut pairs_path: Option<PathBuf> = None;
    let mut rule: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--update-budget" => update_budget = true,
            "--root" => {
                root = Some(PathBuf::from(args.next().ok_or("--root needs a value")?));
            }
            "--budget" => {
                budget_path = Some(PathBuf::from(args.next().ok_or("--budget needs a value")?));
            }
            "--pairs" => {
                pairs_path = Some(PathBuf::from(args.next().ok_or("--pairs needs a value")?));
            }
            "--rule" => {
                rule = Some(args.next().ok_or("--rule needs a value")?.to_uppercase());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return Err("nothing to do (pass --workspace)".to_string());
    }

    let root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    let budget_path = budget_path.unwrap_or_else(|| root.join("lint-budget.txt"));
    let budget = Budget::load(&budget_path)?;
    let pairs_path = pairs_path.unwrap_or_else(|| root.join("lint-pairs.txt"));
    let pairs = Pairs::load(&pairs_path)?;

    let ws = Workspace::load(&root).map_err(|e| format!("loading workspace: {e}"))?;
    if ws.files.is_empty() {
        return Err(format!("no Rust sources found under {}", root.display()));
    }
    let started = Instant::now();
    let mut report = ws.check_full(&budget, &pairs);
    let elapsed = started.elapsed().as_secs_f64();

    if update_budget {
        let rendered = Budget::render(&report.allow_counts);
        std::fs::write(&budget_path, rendered)
            .map_err(|e| format!("writing {}: {e}", budget_path.display()))?;
        eprintln!("mmlib-lint: wrote {}", budget_path.display());
    }

    // `--rule L1` narrows the report to one rule family — the repro mode
    // check.sh prints on failure.
    if let Some(rule) = &rule {
        report.violations.retain(|v| v.rule == rule);
        report.allowed.retain(|v| v.rule == rule);
    }

    if json {
        println!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }
    if metrics {
        print!("{}", render_self_metrics(&report, elapsed));
    }
    Ok(report.clean())
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory \
                        (pass --root)"
                .to_string());
        }
    }
}
