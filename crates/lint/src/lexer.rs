//! A hand-rolled Rust lexer: just enough tokenization for span-aware rules.
//!
//! This is deliberately not a full Rust grammar. The rules in this crate
//! need four things a plain `grep` cannot give them:
//!
//! 1. **Comment/string awareness** — `panic!` inside a doc example or a
//!    string literal is not a violation; a metric name inside a string
//!    literal *is* a metric registration.
//! 2. **Exact identifier tokens** — `cross_entropy` must not match an
//!    entropy rule, `unwrap_or` must not match `unwrap`.
//! 3. **Brace structure** — `#[cfg(test)] mod tests { ... }` regions are
//!    exempt from library-code rules, which requires matching delimiters.
//! 4. **Line/column spans** — findings must point at the offending token.
//!
//! The lexer handles the awkward parts of Rust's lexical grammar that a
//! naive scanner gets wrong: nested block comments, raw strings with
//! arbitrary `#` fences, byte/raw-byte strings, char literals vs.
//! lifetimes, and numeric literals with underscores and exponents.

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `as`, ...).
    Ident,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`). The
    /// token's `text` is the *decoded-enough* inner text for `"..."` (escape
    /// sequences left as-is) and the raw inner text for raw strings.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal (`0x10`, `1_000`, `2.5e-3`, `42u64`).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`{`, `:`, `=`, `>`...).
    Punct,
    /// `//` comment (text excludes the slashes, includes doc `///`, `//!`).
    LineComment,
    /// `/* */` comment (text excludes the delimiters).
    BlockComment,
}

/// One token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The token's text. For `Str`/comments this is the inner text; for
    /// everything else the exact source slice.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

impl Token {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes Rust source. Unterminated constructs (string, block comment)
/// consume to end of input rather than erroring: the lint must keep going
/// on files rustc would reject, because it runs before the compiler.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1 }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    self.bump();
                    self.bump();
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        text.push(c);
                        self.bump();
                    }
                    out.push(Token { kind: TokenKind::LineComment, text, line, col });
                }
                '/' if self.peek(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    let mut text = String::new();
                    while depth > 0 {
                        match (self.peek(0), self.peek(1)) {
                            (Some('/'), Some('*')) => {
                                depth += 1;
                                text.push_str("/*");
                                self.bump();
                                self.bump();
                            }
                            (Some('*'), Some('/')) => {
                                depth -= 1;
                                self.bump();
                                self.bump();
                                if depth > 0 {
                                    text.push_str("*/");
                                }
                            }
                            (Some(c), _) => {
                                text.push(c);
                                self.bump();
                            }
                            (None, _) => break,
                        }
                    }
                    out.push(Token { kind: TokenKind::BlockComment, text, line, col });
                }
                '"' => {
                    let text = self.string_body();
                    out.push(Token { kind: TokenKind::Str, text, line, col });
                }
                'r' | 'b' if self.is_string_prefix() => {
                    let (kind, text) = self.prefixed_literal();
                    out.push(Token { kind, text, line, col });
                }
                '\'' => {
                    let (kind, text) = self.char_or_lifetime();
                    out.push(Token { kind, text, line, col });
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    out.push(Token { kind: TokenKind::Ident, text, line, col });
                }
                c if c.is_ascii_digit() => {
                    let text = self.number();
                    out.push(Token { kind: TokenKind::Num, text, line, col });
                }
                c => {
                    self.bump();
                    out.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, col });
                }
            }
        }
        out
    }

    /// Does the cursor sit on a raw/byte string or raw identifier prefix
    /// (`r"`, `r#"`, `br"`, `b"`, `b'`, `r#ident`)?
    fn is_string_prefix(&self) -> bool {
        match self.peek(0) {
            Some('r') => {
                // r" or r#...#" (raw string) or r#ident (raw identifier).
                let mut i = 1;
                while self.peek(i) == Some('#') {
                    i += 1;
                }
                self.peek(i) == Some('"')
                    || (i == 2 && self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start))
            }
            Some('b') => matches!(
                (self.peek(1), self.peek(2)),
                (Some('"'), _) | (Some('\''), _) | (Some('r'), Some('"')) | (Some('r'), Some('#'))
            ),
            _ => false,
        }
    }

    /// Lexes `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, `r#ident`.
    fn prefixed_literal(&mut self) -> (TokenKind, String) {
        let first = self.bump();
        if first == Some('b') {
            match self.peek(0) {
                Some('"') => return (TokenKind::Str, self.string_body()),
                Some('\'') => {
                    let (_, text) = self.char_or_lifetime();
                    return (TokenKind::Char, text);
                }
                Some('r') => {
                    self.bump();
                    return (TokenKind::Str, self.raw_string_body());
                }
                _ => return (TokenKind::Ident, "b".to_string()),
            }
        }
        // first == 'r': either a raw string or a raw identifier.
        if self.peek(0) == Some('#') && self.peek(1).is_some_and(is_ident_start) {
            self.bump(); // '#'
            let mut text = String::from("r#");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return (TokenKind::Ident, text);
        }
        (TokenKind::Str, self.raw_string_body())
    }

    /// Lexes `"..."` starting at the opening quote; returns the inner text.
    fn string_body(&mut self) -> String {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    text.push(c);
                    self.bump();
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => {
                    self.bump();
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        text
    }

    /// Lexes `#*"..."#*` starting at the first `#` or `"`; returns inner text.
    fn raw_string_body(&mut self) -> String {
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // Candidate close: quote followed by `fence` hashes.
                for i in 0..fence {
                    if self.peek(1 + i) != Some('#') {
                        text.push(c);
                        self.bump();
                        continue 'outer;
                    }
                }
                self.bump();
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'` (char).
    fn char_or_lifetime(&mut self) -> (TokenKind, String) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape + closing quote.
                let mut text = String::new();
                self.bump();
                if let Some(c) = self.bump() {
                    text.push(c);
                    // \u{...} and \x.. escapes: consume to the closing quote.
                    while let Some(c) = self.peek(0) {
                        if c == '\'' {
                            break;
                        }
                        text.push(c);
                        self.bump();
                    }
                }
                self.bump(); // closing quote
                (TokenKind::Char, text)
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'abc (lifetime): scan the ident,
                // then look for a closing quote.
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    (TokenKind::Char, text)
                } else {
                    (TokenKind::Lifetime, text)
                }
            }
            Some(c) => {
                // Non-ident char literal like '.' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                (TokenKind::Char, c.to_string())
            }
            None => (TokenKind::Punct, "'".to_string()),
        }
    }

    /// Lexes a numeric literal (ints, floats, underscores, suffixes).
    fn number(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `0..n` is a range, not a float; `0.5` is a float.
                if self.peek(1) == Some('.') {
                    break;
                }
                if !self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    break;
                }
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && text.chars().last().is_some_and(|p| p == 'e' || p == 'E')
                && !text.starts_with("0x")
            {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn main() { x.unwrap(); }");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".to_string())));
        assert!(toks.contains(&(TokenKind::Punct, "{".to_string())));
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "x.unwrap() // not code";"#);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r##"let s = r#"a "quoted" b"#;"##);
        let s = toks.iter().find(|(k, _)| *k == TokenKind::Str).expect("string token");
        assert_eq!(s.1, "a \"quoted\" b");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ real");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "real".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) {}");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        let lifes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(lifes.len(), 2);
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let c = '\n'; let u = '\u{1F600}'; next");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "next"));
    }

    #[test]
    fn numbers_with_ranges_and_exponents() {
        let toks = kinds("for i in 0..10 { let x = 2.5e-3; let h = 0xFF_u8; }");
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Num).map(|(_, t)| t.clone()).collect();
        assert_eq!(nums, vec!["0", "10", "2.5e-3", "0xFF_u8"]);
    }

    #[test]
    fn line_comments_capture_text() {
        let toks = kinds("x // mmlib-lint: allow(P1, reason)\ny");
        let c = toks.iter().find(|(k, _)| *k == TokenKind::LineComment).expect("comment");
        assert!(c.1.contains("mmlib-lint"));
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\n  b\n    c");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 5));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = kinds(r#"let b = b"bytes"; let k = r#match; b'x'"#);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t == "bytes"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "x"));
    }
}
