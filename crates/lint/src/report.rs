//! Report rendering: human-readable text and machine-readable JSON.
//!
//! The JSON encoder is hand-rolled (the lint is dependency-free by
//! design) and emits a stable schema:
//!
//! ```json
//! {
//!   "tool": "mmlib-lint",
//!   "clean": false,
//!   "files_scanned": 97,
//!   "violations": [
//!     {"rule": "P1", "path": "crates/net/src/client.rs", "line": 192,
//!      "col": 31, "message": "...", "snippet": "..."}
//!   ],
//!   "allowed": 15,
//!   "allow_counts": {"P1": 13, "C1": 2}
//! }
//! ```
//!
//! `allowed` counts the violations suppressed by pragmas; `allow_counts`
//! counts the *pragmas* per rule (the ratchet's unit — one `allow-file`
//! pragma may suppress several violations).

use std::fmt::Write as _;

use crate::engine::Report;
use crate::rules::Violation;

/// Self-metric: findings per rule (active + pragma-allowed). Declared in
/// the obs taxonomy (`crates/obs/src/taxonomy.rs`) so M1 stays closed
/// over the lint crate itself.
pub const LINT_FINDINGS_TOTAL: &str = "mmlib_lint_findings_total";
/// Self-metric: wall-clock duration of one full analysis run.
pub const LINT_ANALYSIS_SECONDS: &str = "mmlib_lint_analysis_seconds";

/// Renders the lint's own metrics in Prometheus text exposition format
/// (for `--metrics`). The lint is dependency-free by design, so this is
/// hand-rolled rather than routed through `mmlib-obs` — but the names
/// live in the shared taxonomy and M1 cross-checks them.
pub fn render_self_metrics(report: &Report, seconds: f64) -> String {
    let mut per_rule: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for v in report.violations.iter().chain(&report.allowed) {
        *per_rule.entry(v.rule).or_default() += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE {LINT_FINDINGS_TOTAL} counter");
    for (rule, count) in &per_rule {
        let _ = writeln!(out, "{LINT_FINDINGS_TOTAL}{{rule=\"{rule}\"}} {count}");
    }
    let _ = writeln!(out, "# TYPE {LINT_ANALYSIS_SECONDS} histogram");
    let _ = writeln!(out, "{LINT_ANALYSIS_SECONDS}_sum {seconds:.6}");
    let _ = writeln!(out, "{LINT_ANALYSIS_SECONDS}_count 1");
    out
}

/// Renders the human-readable report.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        if v.line > 0 {
            let _ = writeln!(out, "{}: {}:{}:{}: {}", v.rule, v.path, v.line, v.col, v.message);
        } else {
            let _ = writeln!(out, "{}: {}: {}", v.rule, v.path, v.message);
        }
        if !v.snippet.is_empty() {
            let _ = writeln!(out, "    | {}", v.snippet.trim());
        }
    }
    let allowed = report.allowed.len();
    let _ = writeln!(
        out,
        "mmlib-lint: {} file(s) scanned, {} violation(s), {} allowed by pragma",
        report.files_scanned,
        report.violations.len(),
        allowed,
    );
    out
}

/// Renders the machine-readable JSON report (stable schema, sorted keys).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{");
    out.push_str("\"tool\":\"mmlib-lint\",");
    let _ = write!(out, "\"clean\":{},", report.clean());
    let _ = write!(out, "\"files_scanned\":{},", report.files_scanned);
    out.push_str("\"violations\":[");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_violation(&mut out, v);
    }
    out.push_str("],");
    let _ = write!(out, "\"allowed\":{},", report.allowed.len());
    out.push_str("\"allow_counts\":{");
    for (i, (rule, count)) in report.allow_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(rule), count);
    }
    out.push_str("}}");
    out
}

fn push_violation(out: &mut String, v: &Violation) {
    out.push('{');
    let _ = write!(out, "\"rule\":{},", json_string(v.rule));
    let _ = write!(out, "\"path\":{},", json_string(&v.path));
    let _ = write!(out, "\"line\":{},", v.line);
    let _ = write!(out, "\"col\":{},", v.col);
    let _ = write!(out, "\"message\":{},", json_string(&v.message));
    let _ = write!(out, "\"snippet\":{}", json_string(v.snippet.trim()));
    out.push('}');
}

/// Escapes a string per RFC 8259.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Report;
    use std::collections::BTreeMap;

    fn sample() -> Report {
        Report {
            violations: vec![Violation {
                rule: "P1",
                path: "crates/net/src/client.rs".to_string(),
                line: 7,
                col: 3,
                message: "unwrap in library code: \"bad\"".to_string(),
                snippet: "x.unwrap()".to_string(),
            }],
            allowed: vec![],
            allow_counts: BTreeMap::from([("C1".to_string(), 2)]),
            files_scanned: 4,
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = render_json(&sample());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rule\":\"P1\""));
        assert!(json.contains("unwrap in library code: \\\"bad\\\""));
        assert!(json.contains("\"allow_counts\":{\"C1\":2}"));
        assert!(json.contains("\"clean\":false"));
    }

    #[test]
    fn text_includes_location_and_summary() {
        let text = render_text(&sample());
        assert!(text.contains("P1: crates/net/src/client.rs:7:3:"));
        assert!(text.contains("4 file(s) scanned, 1 violation(s)"));
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
    }

    #[test]
    fn self_metrics_render_per_rule_counts() {
        let text = render_self_metrics(&sample(), 0.25);
        assert!(text.contains("mmlib_lint_findings_total{rule=\"P1\"} 1"));
        assert!(text.contains("mmlib_lint_analysis_seconds_sum 0.250000"));
        assert!(text.contains("mmlib_lint_analysis_seconds_count 1"));
    }
}
