//! `mmlib-lint:` pragma parsing.
//!
//! Two forms, both inside `//` comments:
//!
//! * `// mmlib-lint: allow(P1, reason text)` — suppresses rule `P1` on the
//!   same line, or (for a comment-only line) on the next code line.
//! * `// mmlib-lint: allow-file(D1, reason text)` — suppresses rule `D1`
//!   for the whole file (e.g. a dedicated timing module).
//!
//! The reason is mandatory: an allow without a stated reason is itself a
//! violation, and every suppression is counted against the committed
//! ratchet budget (`lint-budget.txt`), which may only decrease.

use crate::lexer::{Token, TokenKind};

/// Scope of one pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaScope {
    /// Applies to the pragma's line (or the next line for a standalone
    /// comment).
    Line,
    /// Applies to the whole file.
    File,
}

/// One parsed (or malformed) pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule id the pragma names (`"P1"`, `"D1"`, ...), uppercased.
    pub rule: String,
    pub scope: PragmaScope,
    /// The stated reason (may be empty — which is reported as malformed).
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Parse problem, if any (`None` = well-formed).
    pub error: Option<String>,
}

/// Extracts pragmas from a token stream's line comments.
pub fn parse_pragmas(tokens: &[Token]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = t.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = text.strip_prefix("mmlib-lint:") else { continue };
        out.push(parse_one(rest.trim(), t.line));
    }
    out
}

fn parse_one(body: &str, line: usize) -> Pragma {
    let malformed = |msg: &str| Pragma {
        rule: String::new(),
        scope: PragmaScope::Line,
        reason: String::new(),
        line,
        error: Some(msg.to_string()),
    };

    let (scope, rest) = if let Some(rest) = body.strip_prefix("allow-file") {
        (PragmaScope::File, rest)
    } else if let Some(rest) = body.strip_prefix("allow") {
        (PragmaScope::Line, rest)
    } else {
        return malformed("expected `allow(...)` or `allow-file(...)`");
    };
    let rest = rest.trim();
    let Some(inner) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) else {
        return malformed("expected `(RULE, reason)` after allow");
    };
    let Some((rule, reason)) = inner.split_once(',') else {
        return malformed("missing `, reason` — every allow must state why");
    };
    let rule = rule.trim().to_uppercase();
    let reason = reason.trim().to_string();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return malformed("rule id must be alphanumeric (e.g. P1)");
    }
    if reason.is_empty() {
        return malformed("empty reason — every allow must state why");
    }
    Pragma { rule, scope, reason, line, error: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Pragma> {
        parse_pragmas(&lex(src))
    }

    #[test]
    fn line_allow_parses() {
        let p = parse("x.unwrap(); // mmlib-lint: allow(P1, invariant: set above)");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rule, "P1");
        assert_eq!(p[0].scope, PragmaScope::Line);
        assert_eq!(p[0].reason, "invariant: set above");
        assert!(p[0].error.is_none());
    }

    #[test]
    fn file_allow_parses() {
        let p = parse("// mmlib-lint: allow-file(D1, timing module by design)");
        assert_eq!(p[0].scope, PragmaScope::File);
        assert_eq!(p[0].rule, "D1");
    }

    #[test]
    fn missing_reason_is_malformed() {
        assert!(parse("// mmlib-lint: allow(P1)")[0].error.is_some());
        assert!(parse("// mmlib-lint: allow(P1, )")[0].error.is_some());
    }

    #[test]
    fn unknown_shape_is_malformed() {
        assert!(parse("// mmlib-lint: suppress(P1, x)")[0].error.is_some());
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        assert!(parse("// a normal comment about mmlib").is_empty());
    }

    #[test]
    fn reasons_may_contain_commas() {
        let p = parse("// mmlib-lint: allow(C1, bounded above, see check)");
        assert!(p[0].error.is_none());
        assert_eq!(p[0].reason, "bounded above, see check");
    }
}
