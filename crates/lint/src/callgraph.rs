//! Per-crate concurrency model: declared locks, per-function facts
//! (acquisitions, calls, I/O sites — each with the set of locks held at
//! that point), and fixpoint summaries propagated over intra-crate call
//! edges.
//!
//! ## Guard-scope model
//!
//! An *acquisition* is `.lock()` / `.read()` / `.write()` **with empty
//! parentheses** whose receiver chain ends in a field or binding declared
//! somewhere in the crate with a `Mutex`/`RwLock` type ascription
//! (`out: Mutex<OutQueue>`, `intake: Arc<Mutex<Vec<TcpStream>>>`).
//! `.read(buf)` / `.write(buf)` with arguments are I/O, never locks.
//!
//! The guard's live range is approximated per-function:
//!
//! * **Bound guard** — `let [mut] NAME = <chain>.lock()[.unwrap-ish()];`
//!   lives to the end of the enclosing block, or to an explicit
//!   `drop(NAME)`. Binding to `_` drops immediately (transient).
//! * **Transient guard** — any other acquisition lives to the end of its
//!   statement: the next `;` at the same brace depth, or through one
//!   attached `{...}` block (`match x.lock() { ... }`,
//!   `for v in x.lock().drain(..) { ... }`, `if let P = &*x.lock() { ... }`
//!   all hold the temporary for the whole block).
//!
//! Known blind spot, by design: a function that *returns* a guard
//! (`fn write_map(&self) -> RwLockWriteGuard<...>`) ends the analyzed
//! scope at its own `}`; the caller's held-set does not include it.
//!
//! ## Call edges
//!
//! Calls are keyed by bare function name. Lock/I-O summaries propagate
//! only through calls the analysis can plausibly resolve inside the
//! crate: free calls (`release_pending(...)`, `atomic::stage_write(...)`)
//! and `self.method(...)`. Method calls on other receivers
//! (`conn.writer.lock().shutdown(..)`) are recorded for G1's pair
//! accounting but excluded from propagation — resolving them by bare
//! name across unrelated types would fabricate edges.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::structure::{self, FnItem};

/// Method names that are I/O regardless of arguments.
const IO_METHODS: &[&str] = &[
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "flush",
    "sync_all",
    "sync_data",
    "fsync",
];

/// Guard adapters that may sit between the acquisition and the binding
/// (`.lock().unwrap_or_else(|e| e.into_inner())`).
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Keywords that look like `ident(` but are not calls.
const NON_CALL_KEYWORDS: &[&str] =
    &["if", "while", "for", "match", "return", "loop", "in", "else", "move", "as", "await"];

/// How a call site's receiver resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// `name(...)` or `path::name(...)` — resolvable in-crate.
    Free,
    /// `self.name(...)` — resolvable in-crate.
    SelfMethod,
    /// `expr.name(...)` on any other receiver — recorded, not propagated.
    Other,
}

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct Acq {
    pub lock: String,
    pub line: usize,
    pub col: usize,
    /// Locks already held when this one is taken.
    pub held: Vec<String>,
}

/// One call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    /// Token index in the owning file, for G1's block scoping.
    pub idx: usize,
    pub line: usize,
    pub col: usize,
    pub receiver: Receiver,
    /// The path segment before the call (`Sha256` in `Sha256::new()`,
    /// `atomic` in `atomic::stage_write(...)`), when there is one.
    pub qualifier: Option<String>,
    pub held: Vec<String>,
}

/// One direct I/O site.
#[derive(Debug, Clone)]
pub struct IoSite {
    /// What the site does (`"write"`, `"fs::read_dir"`), for messages.
    pub what: String,
    pub line: usize,
    pub col: usize,
    pub held: Vec<String>,
}

/// Facts for one function body.
#[derive(Debug, Clone)]
pub struct FnFacts {
    pub name: String,
    pub qualname: String,
    /// Index into the file list the model was built from.
    pub file: usize,
    pub line: usize,
    pub body: Option<(usize, usize)>,
    pub acquires: Vec<Acq>,
    pub calls: Vec<CallSite>,
    pub io: Vec<IoSite>,
}

/// The concurrency model for one crate's library code.
pub struct CrateModel {
    pub krate: String,
    /// Paths of the files the model was built from, index-aligned with
    /// `FnFacts::file`.
    pub paths: Vec<String>,
    pub fns: Vec<FnFacts>,
    /// Lock names declared anywhere in the crate.
    pub locks: BTreeSet<String>,
    /// Transitive lock set per bare function name (fixpoint over
    /// resolvable call edges).
    pub trans_acquires: BTreeMap<String, BTreeSet<String>>,
    /// Whether a bare function name transitively performs I/O.
    pub trans_io: BTreeMap<String, bool>,
}

/// Builds the model for one crate from its library files. `files` pairs
/// each `SourceFile` with its index in the engine's file list.
pub fn build(krate: &str, files: &[(usize, &SourceFile)]) -> CrateModel {
    let mut locks = BTreeSet::new();
    for (_, f) in files {
        collect_lock_names(f, &mut locks);
    }
    let mut fns = Vec::new();
    for (fi, (_, f)) in files.iter().enumerate() {
        let items = structure::functions(&f.tokens);
        for item in &items {
            if f.in_test_code(item.line) {
                continue;
            }
            fns.push(extract_facts(f, fi, item, &items, &locks));
        }
    }
    let (trans_acquires, trans_io) = fixpoint(&fns);
    CrateModel {
        krate: krate.to_string(),
        paths: files.iter().map(|(_, f)| f.path.clone()).collect(),
        fns,
        locks,
        trans_acquires,
        trans_io,
    }
}

/// Scans for `name :` followed shortly by `Mutex`/`RwLock` — struct
/// fields, statics, and typed parameters all declare a lock name.
fn collect_lock_names(file: &SourceFile, out: &mut BTreeSet<String>) {
    let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    for w in 0..code.len().saturating_sub(2) {
        if code[w].kind != TokenKind::Ident || !code[w + 1].is_punct(':') {
            continue;
        }
        // `::` is a path, not a type ascription.
        if code.get(w + 2).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        for t in code.iter().skip(w + 2).take(8) {
            if ['(', ')', '{', '}', ',', ';', '='].iter().any(|&c| t.is_punct(c)) {
                break;
            }
            if t.is_ident("Mutex") || t.is_ident("RwLock") {
                out.insert(code[w].text.clone());
                break;
            }
        }
    }
}

/// A live guard during the facts scan.
struct Guard {
    lock: String,
    /// Token index at which the guard dies (inclusive of that token).
    end: usize,
    /// Binding name, for `drop(name)`.
    name: Option<String>,
}

fn held_of(guards: &[Guard]) -> Vec<String> {
    let mut held: Vec<String> = Vec::new();
    for g in guards {
        if !held.contains(&g.lock) {
            held.push(g.lock.clone());
        }
    }
    held
}

/// One left-to-right pass over a function body, tracking live guards.
fn extract_facts(
    file: &SourceFile,
    file_idx: usize,
    item: &FnItem,
    all_items: &[FnItem],
    locks: &BTreeSet<String>,
) -> FnFacts {
    let mut facts = FnFacts {
        name: item.name.clone(),
        qualname: item.qualname.clone(),
        file: file_idx,
        line: item.line,
        body: item.body,
        acquires: Vec::new(),
        calls: Vec::new(),
        io: Vec::new(),
    };
    let Some((open, close)) = item.body else { return facts };
    let toks = &file.tokens;
    let nested = structure::nested_extents(item, all_items);

    let mut guards: Vec<Guard> = Vec::new();
    // Open-brace stack (indices), for "end of enclosing block".
    let mut blocks: Vec<usize> = vec![open];
    // First token of the current statement, for `let` binding detection.
    let mut stmt_start = open + 1;

    let mut i = open + 1;
    while i < close {
        if let Some(&(_, nend)) = nested.iter().find(|&&(s, e)| i >= s && i <= e) {
            i = nend + 1;
            stmt_start = i;
            continue;
        }
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        guards.retain(|g| g.end >= i);
        if t.is_punct('{') {
            blocks.push(i);
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            blocks.pop();
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.kind == TokenKind::Ident {
            // `drop(name)` releases a bound guard early.
            if t.text == "drop"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
            {
                if let Some(victim) = toks.get(i + 2) {
                    guards.retain(|g| g.name.as_deref() != Some(victim.text.as_str()));
                }
            }
            if let Some(adv) =
                try_acquisition(toks, i, close, stmt_start, &blocks, locks, &mut guards, &mut facts)
            {
                i = adv;
                continue;
            }
            if let Some(what) = io_site_at(toks, i) {
                facts.io.push(IoSite {
                    what,
                    line: t.line,
                    col: t.col,
                    held: held_of(&guards),
                });
                i += 1;
                continue;
            }
            if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            {
                let (receiver, qualifier) = receiver_kind(toks, i);
                facts.calls.push(CallSite {
                    name: t.text.clone(),
                    idx: i,
                    line: t.line,
                    col: t.col,
                    receiver,
                    qualifier,
                    held: held_of(&guards),
                });
            }
        }
        i += 1;
    }
    facts
}

/// If `toks[i]` is a lock acquisition, records it, installs its guard,
/// and returns the index to resume scanning at.
#[allow(clippy::too_many_arguments)]
fn try_acquisition(
    toks: &[Token],
    i: usize,
    body_close: usize,
    stmt_start: usize,
    blocks: &[usize],
    locks: &BTreeSet<String>,
    guards: &mut Vec<Guard>,
    facts: &mut FnFacts,
) -> Option<usize> {
    let t = &toks[i];
    if !matches!(t.text.as_str(), "lock" | "read" | "write") {
        return None;
    }
    if !prev_code(toks, i).is_some_and(|p| toks[p].is_punct('.')) {
        return None;
    }
    // Empty parens: `.lock()` — `.read(buf)` is I/O, not an acquisition.
    if !(toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && toks.get(i + 2).is_some_and(|n| n.is_punct(')')))
    {
        return None;
    }
    let recv = receiver_name(toks, i)?;
    if !locks.contains(&recv) {
        return None;
    }

    let acq = Acq { lock: recv.clone(), line: t.line, col: t.col, held: held_of(guards) };
    facts.acquires.push(acq);

    // Skip one unwrap-ish adapter to find the end of the guard expression.
    let mut chain_end = i + 2;
    if toks.get(chain_end + 1).is_some_and(|n| n.is_punct('.'))
        && toks.get(chain_end + 2).is_some_and(|n| {
            n.kind == TokenKind::Ident && GUARD_ADAPTERS.contains(&n.text.as_str())
        })
        && toks.get(chain_end + 3).is_some_and(|n| n.is_punct('('))
    {
        chain_end = structure::matching(toks, chain_end + 3, '(', ')')?;
    }

    // Bound guard: `let [mut] NAME = <chain>;` scoped to the block end.
    if let Some(name) = binding_name(toks, stmt_start, i) {
        if toks.get(chain_end + 1).is_some_and(|n| n.is_punct(';')) && name != "_" {
            let block_open = *blocks.last()?;
            let end = structure::matching(toks, block_open, '{', '}').unwrap_or(body_close);
            guards.push(Guard { lock: recv, end, name: Some(name) });
            // Resume at the `;` so the caller resets the statement start.
            return Some(chain_end + 1);
        }
    }

    // Transient: to the statement's `;`, or through one attached block.
    let mut j = chain_end + 1;
    let end = loop {
        let Some(n) = toks.get(j) else { break body_close };
        if j >= body_close {
            break body_close;
        }
        if n.is_punct('(') {
            j = structure::matching(toks, j, '(', ')').unwrap_or(body_close);
        } else if n.is_punct('[') {
            j = structure::matching(toks, j, '[', ']').unwrap_or(body_close);
        } else if n.is_punct('{') {
            // Attached block (`match`/`for`/`if let` holding the
            // temporary): the guard lives through it.
            break structure::matching(toks, j, '{', '}').unwrap_or(body_close);
        } else if n.is_punct('}') {
            // Tail expression: the temporary dies at the block close.
            break j;
        } else if n.is_punct(';') {
            break j;
        }
        j += 1;
    };
    guards.push(Guard { lock: recv, end, name: None });
    Some(i + 1)
}

/// The previous non-comment token index.
fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !toks[j].is_comment())
}

/// Walks back over the receiver chain of `.method` at `i` to the nearest
/// plain identifier: `self.shards[i].lock()` → `shards`.
fn receiver_name(toks: &[Token], i: usize) -> Option<String> {
    let dot = prev_code(toks, i)?;
    let mut j = prev_code(toks, dot)?;
    loop {
        let t = &toks[j];
        if t.is_punct(']') {
            j = matching_back(toks, j, '[', ']')?;
            j = prev_code(toks, j)?;
        } else if t.is_punct(')') {
            j = matching_back(toks, j, '(', ')')?;
            j = prev_code(toks, j)?;
        } else if t.kind == TokenKind::Ident {
            return Some(t.text.clone());
        } else if t.is_punct('*') || t.is_punct('&') {
            j = prev_code(toks, j)?;
        } else {
            return None;
        }
    }
}

/// Finds the opening delimiter matching the closer at `close`.
fn matching_back(toks: &[Token], close: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        if toks[j].is_punct(close_c) {
            depth += 1;
        } else if toks[j].is_punct(open_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// `let [mut] NAME =` at the statement start, with `=` before `i`.
fn binding_name(toks: &[Token], stmt_start: usize, i: usize) -> Option<String> {
    let mut j = stmt_start;
    while j < i && toks[j].is_comment() {
        j += 1;
    }
    if !toks.get(j)?.is_ident("let") {
        return None;
    }
    j += 1;
    if toks.get(j)?.is_ident("mut") {
        j += 1;
    }
    let name = toks.get(j)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    if !toks.get(j + 1)?.is_punct('=') || j + 1 >= i {
        return None;
    }
    Some(name.text.clone())
}

/// Classifies the receiver of a call at `i` (an ident followed by `(`),
/// and captures the path qualifier for `Path::name(...)` calls.
fn receiver_kind(toks: &[Token], i: usize) -> (Receiver, Option<String>) {
    let Some(p) = prev_code(toks, i) else { return (Receiver::Free, None) };
    if toks[p].is_punct('.') {
        if let Some(r) = prev_code(toks, p) {
            let self_recv = toks[r].is_ident("self")
                && prev_code(toks, r).is_none_or(|q| !toks[q].is_punct('.'));
            if self_recv {
                return (Receiver::SelfMethod, None);
            }
        }
        return (Receiver::Other, None);
    }
    if toks[p].is_punct(':') {
        if let Some(p2) = prev_code(toks, p) {
            if toks[p2].is_punct(':') {
                if let Some(p3) = prev_code(toks, p2) {
                    if toks[p3].kind == TokenKind::Ident {
                        return (Receiver::Free, Some(toks[p3].text.clone()));
                    }
                }
            }
        }
    }
    (Receiver::Free, None)
}

/// Whether a call site plausibly resolves to a same-crate function, given
/// the crate's function list. Bare calls and `self.`/module-path calls
/// resolve by bare name; a `Type::name(...)` path call resolves only when
/// the crate has a `name` whose impl context is `Type` — `Sha256::new()`
/// must not inherit the summary of every `fn new` in the crate.
pub fn call_resolves(fns: &[FnFacts], c: &CallSite) -> bool {
    if c.receiver == Receiver::Other {
        return false;
    }
    match &c.qualifier {
        Some(q) if q != "Self" && q.chars().next().is_some_and(|ch| ch.is_uppercase()) => {
            fns.iter().any(|f| {
                let segs: Vec<&str> = f.qualname.split("::").collect();
                f.name == c.name
                    && segs.len() >= 2
                    && segs[segs.len() - 2] == q.as_str()
            })
        }
        _ => true,
    }
}

/// Detects a direct I/O site at ident `i`; returns a description.
fn io_site_at(toks: &[Token], i: usize) -> Option<String> {
    let t = &toks[i];
    let after_dot = prev_code(toks, i).is_some_and(|p| toks[p].is_punct('.'));
    let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    if after_dot && called && IO_METHODS.contains(&t.text.as_str()) {
        return Some(t.text.clone());
    }
    // `.read(buf)` / `.write(buf)` with at least one argument.
    if after_dot
        && called
        && matches!(t.text.as_str(), "read" | "write")
        && !toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
    {
        return Some(t.text.clone());
    }
    // `fs::anything(...)` — filesystem path calls (read_dir, rename, ...).
    if called && t.kind == TokenKind::Ident {
        let p1 = prev_code(toks, i);
        if let Some(p1) = p1 {
            if toks[p1].is_punct(':') {
                if let Some(p2) = prev_code(toks, p1) {
                    if toks[p2].is_punct(':') {
                        if let Some(p3) = prev_code(toks, p2) {
                            if toks[p3].is_ident("fs") {
                                return Some(format!("fs::{}", t.text));
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// Fixpoint over resolvable call edges: transitive lock sets and I/O
/// reachability per bare function name.
fn fixpoint(fns: &[FnFacts]) -> (BTreeMap<String, BTreeSet<String>>, BTreeMap<String, bool>) {
    let mut acq: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut io: BTreeMap<String, bool> = BTreeMap::new();
    for f in fns {
        let entry = acq.entry(f.name.clone()).or_default();
        entry.extend(f.acquires.iter().map(|a| a.lock.clone()));
        *io.entry(f.name.clone()).or_default() |= !f.io.is_empty();
    }
    // Bounded iteration: the lattice height is |locks| x |fns|.
    for _ in 0..fns.len() + 1 {
        let mut changed = false;
        for f in fns {
            for c in &f.calls {
                if c.name == f.name || !call_resolves(fns, c) {
                    continue;
                }
                let (callee_acq, callee_io) = match (acq.get(&c.name), io.get(&c.name)) {
                    (Some(a), Some(i)) => (a.clone(), *i),
                    _ => continue, // not a crate function
                };
                let ea = acq.entry(f.name.clone()).or_default();
                let before = ea.len();
                ea.extend(callee_acq);
                changed |= ea.len() != before;
                let ei = io.entry(f.name.clone()).or_default();
                if callee_io && !*ei {
                    *ei = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (acq, io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> CrateModel {
        let f = SourceFile::new("crates/net/src/lib.rs", src);
        build("net", &[(0, &f)])
    }

    const DECLS: &str = "struct S { a: Mutex<u32>, b: RwLock<u32> }\n";

    #[test]
    fn lock_names_from_fields_and_params() {
        let m = model("struct S { out: Mutex<Q> }\nfn f(intake: &Arc<Mutex<Vec<u8>>>) {}\n");
        assert!(m.locks.contains("out"));
        assert!(m.locks.contains("intake"));
    }

    #[test]
    fn bound_guard_lives_to_block_end() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self) {{ let g = self.a.lock(); self.touch(); }} }}"
        );
        let m = model(&src);
        let f = m.fns.iter().find(|f| f.name == "f").unwrap();
        let call = f.calls.iter().find(|c| c.name == "touch").unwrap();
        assert_eq!(call.held, vec!["a".to_string()]);
    }

    #[test]
    fn transient_guard_ends_at_semicolon() {
        let src = format!("{DECLS}impl S {{ fn f(&self) {{ self.a.lock().push(1); after(); }} }}");
        let m = model(&src);
        let f = &m.fns[0];
        let after = f.calls.iter().find(|c| c.name == "after").unwrap();
        assert!(after.held.is_empty());
    }

    #[test]
    fn transient_guard_spans_attached_block() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self) {{ for v in self.a.lock().drain(..) {{ body(v); }} done(); }} }}"
        );
        let m = model(&src);
        let f = &m.fns[0];
        assert_eq!(f.calls.iter().find(|c| c.name == "body").unwrap().held, vec!["a"]);
        assert!(f.calls.iter().find(|c| c.name == "done").unwrap().held.is_empty());
    }

    #[test]
    fn drop_releases_bound_guard() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self) {{ let g = self.a.lock(); drop(g); after(); }} }}"
        );
        let m = model(&src);
        let f = &m.fns[0];
        assert!(f.calls.iter().find(|c| c.name == "after").unwrap().held.is_empty());
    }

    #[test]
    fn underscore_binding_is_transient() {
        let src = format!("{DECLS}impl S {{ fn f(&self) {{ let _ = self.a.lock(); after(); }} }}");
        let m = model(&src);
        assert!(m.fns[0].calls.iter().find(|c| c.name == "after").unwrap().held.is_empty());
    }

    #[test]
    fn poison_adapter_still_binds() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self) {{ \
             let g = self.a.lock().unwrap_or_else(|e| e.into_inner()); after(); }} }}"
        );
        let m = model(&src);
        assert_eq!(m.fns[0].calls.iter().find(|c| c.name == "after").unwrap().held, vec!["a"]);
    }

    #[test]
    fn read_with_args_is_io_not_acquisition() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self, s: &mut TcpStream) {{ \
             let g = self.a.lock(); s.read(&mut buf); }} }}"
        );
        let m = model(&src);
        let f = &m.fns[0];
        assert_eq!(f.acquires.len(), 1);
        assert_eq!(f.io.len(), 1);
        assert_eq!(f.io[0].held, vec!["a"]);
    }

    #[test]
    fn empty_read_on_rwlock_is_acquisition() {
        let src = format!("{DECLS}impl S {{ fn f(&self) {{ let g = self.b.read(); }} }}");
        let m = model(&src);
        assert_eq!(m.fns[0].acquires.len(), 1);
        assert_eq!(m.fns[0].acquires[0].lock, "b");
        assert!(m.fns[0].io.is_empty());
    }

    #[test]
    fn fs_path_calls_are_io() {
        let src = "fn f() { let _e = std::fs::read_dir(\"x\"); }\n";
        let m = model(src);
        assert_eq!(m.fns[0].io.len(), 1);
        assert_eq!(m.fns[0].io[0].what, "fs::read_dir");
    }

    #[test]
    fn transitive_summaries_propagate() {
        let src = format!(
            "{DECLS}impl S {{\n\
             fn leaf(&self, s: &mut T) {{ let g = self.a.lock(); s.write_all(b\"x\"); }}\n\
             fn mid(&self) {{ self.leaf(s); }}\n\
             }}\n\
             fn top(s: &S) {{ s2(); }}\n\
             fn s2() {{ }}\n"
        );
        let m = model(&src);
        assert!(m.trans_acquires["leaf"].contains("a"));
        assert!(m.trans_acquires["mid"].contains("a"));
        assert!(m.trans_io["mid"]);
        assert!(!m.trans_io["s2"]);
    }

    #[test]
    fn other_receiver_calls_do_not_propagate() {
        let src = format!(
            "{DECLS}impl S {{ fn shutdown(&self, s: &mut T) {{ s.write_all(b\"x\"); }} }}\n\
             fn f(conn: &C) {{ conn.shutdown(2); }}\n"
        );
        let m = model(&src);
        assert!(!m.trans_io["f"]);
        // ... but the site is still recorded, for G1.
        assert!(m.fns.iter().any(|f| {
            f.name == "f" && f.calls.iter().any(|c| c.name == "shutdown" && c.receiver == Receiver::Other)
        }));
    }

    #[test]
    fn held_set_at_nested_acquisition() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self) {{ let g = self.a.lock(); let h = self.b.read(); }} }}"
        );
        let m = model(&src);
        let acqs = &m.fns[0].acquires;
        assert_eq!(acqs.len(), 2);
        assert!(acqs[0].held.is_empty());
        assert_eq!(acqs[1].held, vec!["a"]);
    }

    #[test]
    fn type_qualified_calls_resolve_by_impl_context() {
        // `Sha256::new()` must not inherit the summary of an unrelated
        // `fn new` in the crate that happens to do I/O.
        let src = "struct Wal;\nimpl Wal {\n  fn new(p: &Path) -> Wal {\n    \
                   let f = std::fs::create_dir_all(p); Wal\n  }\n}\n\
                   fn hash_layers() { let h = Sha256::new(); }\n\
                   fn open_wal() { let w = Wal::new(p); }\n";
        let m = model(src);
        assert!(!m.trans_io["hash_layers"], "Sha256::new must not resolve to Wal::new");
        assert!(m.trans_io["open_wal"]);
    }

    #[test]
    fn test_code_fns_are_excluded() {
        let src = "struct S { a: Mutex<u32> }\n#[cfg(test)]\nmod tests {\n  fn t() { s.a.lock(); }\n}\n";
        let m = model(src);
        assert!(m.fns.is_empty());
    }
}
