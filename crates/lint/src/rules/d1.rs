//! D1 — determinism hygiene.
//!
//! The provenance approach recovers a model by *re-executing* its training
//! (PAPER.md §3.3); byte-identical recovery therefore requires that nothing
//! on the tensor/train/model path reads ambient state. This rule bans
//! wall-clock reads and OS entropy in those crates' library code. Dedicated
//! timing modules (the Fig. 13 instrumentation) opt out with a file-level
//! `// mmlib-lint: allow-file(D1, reason)` pragma.

use crate::rules::{Violation, D1_CRATES};
use crate::source::SourceFile;

/// Path suffixes banned in deterministic crates: each entry is a `::`
/// separated path tail matched against consecutive ident tokens.
const BANNED_PATHS: &[(&[&str], &str)] = &[
    (&["Instant", "now"], "wall-clock read"),
    (&["SystemTime", "now"], "wall-clock read"),
];

/// Bare identifiers banned in deterministic crates.
const BANNED_IDENTS: &[(&str, &str)] = &[
    ("thread_rng", "OS-seeded RNG"),
    ("from_entropy", "OS-seeded RNG"),
    ("OsRng", "OS entropy source"),
    ("getrandom", "OS entropy source"),
    ("RandomState", "randomly seeded hasher (nondeterministic iteration)"),
];

pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    if !D1_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
    for (i, t) in code.iter().enumerate() {
        if file.in_test_code(t.line) {
            continue;
        }
        for (path, what) in BANNED_PATHS {
            if matches_path(&code, i, path) {
                out.push(Violation::at(
                    "D1",
                    file,
                    t.line,
                    t.col,
                    format!(
                        "{what} `{}` in deterministic crate `{}` — hashing/replay \
                         paths must not read ambient state (annotate a dedicated \
                         timing module with `mmlib-lint: allow-file(D1, ...)`)",
                        path.join("::"),
                        file.crate_name
                    ),
                ));
            }
        }
        for (ident, what) in BANNED_IDENTS {
            if t.is_ident(ident) {
                out.push(Violation::at(
                    "D1",
                    file,
                    t.line,
                    t.col,
                    format!(
                        "{what} `{ident}` in deterministic crate `{}` — seed PRNGs \
                         explicitly so replay reproduces bit-identical results",
                        file.crate_name
                    ),
                ));
            }
        }
    }
}

/// Does `code[i..]` spell `path[0] :: path[1] :: ...`?
fn matches_path(code: &[&crate::lexer::Token], i: usize, path: &[&str]) -> bool {
    let mut idx = i;
    for (n, seg) in path.iter().enumerate() {
        if idx >= code.len() || !code[idx].is_ident(seg) {
            return false;
        }
        idx += 1;
        if n + 1 < path.len() {
            if idx + 1 >= code.len() || !code[idx].is_punct(':') || !code[idx + 1].is_punct(':') {
                return false;
            }
            idx += 2;
        }
    }
    true
}
