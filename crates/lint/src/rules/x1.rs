//! X1 — protocol cross-check.
//!
//! Every opcode in `crates/net/src/protocol.rs` must be (a) dispatched by a
//! server match arm, (b) referenced by client/protocol plumbing outside the
//! enum's own definition, and (c) mentioned by at least one test under
//! `crates/net/tests/`. Adding an opcode without wiring all three — or
//! deleting a dispatch arm behind a wildcard — fails the gate. Opcode
//! discriminants must also be pairwise distinct: two variants sharing a
//! wire byte would decode ambiguously, and `#[repr(u8)]` only catches the
//! collision at compile time when both are written as literals.

use crate::lexer::{Token, TokenKind};
use crate::rules::Violation;
use crate::source::SourceFile;

pub const PROTOCOL: &str = "crates/net/src/protocol.rs";
pub const SERVER: &str = "crates/net/src/server.rs";
pub const CLIENT: &str = "crates/net/src/client.rs";
pub const NET_TESTS_DIR: &str = "crates/net/tests/";

/// Server-side error replies. A bare mention in a test is not enough for
/// these: a test must *assert* on them (an `Err`/`Busy` reply that stops
/// being emitted regresses silently if nothing checks for it).
pub const ERROR_REPLIES: &[&str] = &["Err", "Busy"];

pub fn check(files: &[SourceFile], out: &mut Vec<Violation>) {
    let Some(protocol) = files.iter().find(|f| f.path == PROTOCOL) else {
        // No protocol file in this (possibly partial, in-memory) workspace:
        // nothing to cross-check.
        return;
    };
    let variants = opcode_variants(protocol);
    if variants.is_empty() {
        out.push(Violation::at(
            "X1",
            protocol,
            0,
            0,
            "no `enum Opcode` variants found in protocol.rs — the cross-check \
             has nothing to verify (was the enum renamed?)"
                .to_string(),
        ));
        return;
    }

    let server = files.iter().find(|f| f.path == SERVER);
    let client = files.iter().find(|f| f.path == CLIENT);
    let tests: Vec<&SourceFile> =
        files.iter().filter(|f| f.path.starts_with(NET_TESTS_DIR)).collect();

    let dispatched = server.map(dispatch_arms).unwrap_or_default();
    let mut mentioned_client: Vec<String> = client.map(opcode_mentions).unwrap_or_default();
    // Plumbing shared by both sides lives in protocol.rs free functions
    // (chunk streaming); mentions there count, mentions inside the enum's
    // own impl blocks do not.
    mentioned_client.extend(opcode_mentions_outside_own_impls(protocol));
    let mentioned_tests: Vec<String> =
        tests.iter().flat_map(|f| opcode_mentions(f)).collect();

    let discriminants = opcode_discriminants(protocol);
    for (idx, (variant, value, line)) in discriminants.iter().enumerate() {
        for (other, other_value, _) in &discriminants[..idx] {
            if value == other_value {
                out.push(Violation::at(
                    "X1",
                    protocol,
                    *line,
                    0,
                    format!(
                        "opcode `{variant}` reuses wire discriminant {value:#04x} \
                         already taken by `{other}` — frames would decode ambiguously"
                    ),
                ));
            }
        }
    }

    for (variant, line) in &variants {
        if server.is_some() && !dispatched.contains(variant) {
            out.push(Violation::at(
                "X1",
                protocol,
                *line,
                0,
                format!(
                    "opcode `{variant}` has no dispatch arm (`Opcode::{variant} =>`) \
                     in server.rs — requests with this opcode fall through"
                ),
            ));
        }
        if client.is_some() && !mentioned_client.contains(variant) {
            out.push(Violation::at(
                "X1",
                protocol,
                *line,
                0,
                format!(
                    "opcode `{variant}` is never referenced by client.rs or \
                     protocol.rs plumbing — there is no way to exercise it"
                ),
            ));
        }
        if !tests.is_empty() && !mentioned_tests.contains(variant) {
            out.push(Violation::at(
                "X1",
                protocol,
                *line,
                0,
                format!(
                    "opcode `{variant}` is not mentioned by any test under \
                     crates/net/tests/ — wire coverage is unverified"
                ),
            ));
        }
    }

    // Reply-side gap: error replies must appear in assertion context in at
    // least one test, not merely be mentioned.
    if !tests.is_empty() {
        for reply in ERROR_REPLIES {
            let Some((_, line)) = variants.iter().find(|(v, _)| v == reply) else { continue };
            if !tests.iter().any(|f| has_asserted_mention(f, reply)) {
                out.push(Violation::at(
                    "X1",
                    protocol,
                    *line,
                    0,
                    format!(
                        "error reply opcode `{reply}` is never asserted by a test \
                         under crates/net/tests/ — a server that stops emitting it \
                         would regress silently"
                    ),
                ));
            }
        }
    }
}

/// Whether the file contains `Opcode::<variant>` in assertion context: an
/// `assert*`/`matches` call within the preceding dozen tokens, or an
/// adjacent `==` / `=>` (match arm on the reply opcode).
fn has_asserted_mention(file: &SourceFile, variant: &str) -> bool {
    let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    for i in 0..code.len() {
        if opcode_path_at(&code, i).as_deref() != Some(variant) {
            continue;
        }
        let assertish = (i.saturating_sub(12)..i).any(|j| {
            matches!(
                code[j].text.as_str(),
                "assert" | "assert_eq" | "assert_ne" | "debug_assert" | "debug_assert_eq"
                    | "matches"
            ) && code[j].kind == TokenKind::Ident
        });
        // `x == Opcode::V`, `Opcode::V == x`, or a `Opcode::V =>` match arm.
        let eq_before = i >= 2 && code[i - 1].is_punct('=') && code[i - 2].is_punct('=');
        let after = i + 4; // token past `Opcode :: V`
        let eq_after = code.get(after).is_some_and(|t| t.is_punct('='))
            && code.get(after + 1).is_some_and(|t| t.is_punct('=') || t.is_punct('>'));
        if assertish || eq_before || eq_after {
            return true;
        }
    }
    false
}

/// Extracts `enum Opcode { Variant = 0x.., ... }` variant names and the
/// line each is declared on.
pub fn opcode_variants(protocol: &SourceFile) -> Vec<(String, usize)> {
    let code: Vec<&Token> = protocol.code_tokens().map(|(_, t)| t).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("enum") && code.get(i + 1).is_some_and(|t| t.is_ident("Opcode")) {
            // Scan the brace block: variants are idents at depth 1 followed
            // by `=` (discriminant) or `,` or `}`.
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < code.len() {
                let t = code[j];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    if depth == 1 {
                        return out;
                    }
                    depth -= 1;
                } else if depth == 1 && t.kind == TokenKind::Ident {
                    let next = code.get(j + 1);
                    if next.is_some_and(|n| n.is_punct('=') || n.is_punct(',') || n.is_punct('}')) {
                        out.push((t.text.clone(), t.line));
                        // Skip the discriminant expression to its comma.
                        while j < code.len() && !code[j].is_punct(',') && !code[j].is_punct('}') {
                            j += 1;
                        }
                        continue;
                    }
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// Extracts each `Variant = <literal>` discriminant from `enum Opcode` as
/// `(variant, value, line)`. Variants without a literal discriminant are
/// skipped (rustc assigns those, and it refuses collisions itself).
fn opcode_discriminants(protocol: &SourceFile) -> Vec<(String, u64, usize)> {
    let code: Vec<&Token> = protocol.code_tokens().map(|(_, t)| t).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("enum") && code.get(i + 1).is_some_and(|t| t.is_ident("Opcode")) {
            let mut depth = 0usize;
            let mut j = i + 2;
            while j < code.len() {
                let t = code[j];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    if depth == 1 {
                        return out;
                    }
                    depth -= 1;
                } else if depth == 1
                    && t.kind == TokenKind::Ident
                    && code.get(j + 1).is_some_and(|n| n.is_punct('='))
                {
                    if let Some(value) = code.get(j + 2).and_then(|lit| parse_int(&lit.text)) {
                        out.push((t.text.clone(), value, t.line));
                    }
                    while j < code.len() && !code[j].is_punct(',') && !code[j].is_punct('}') {
                        j += 1;
                    }
                    continue;
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// Parses a decimal or `0x` integer literal, ignoring `_` separators.
/// Literals this cannot parse (e.g. with a type suffix) are skipped by the
/// caller rather than guessed at.
fn parse_int(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    match clean.strip_prefix("0x").or_else(|| clean.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => clean.parse().ok(),
    }
}

/// Variants appearing as a server match arm: `Opcode::V =>` or `Opcode::V |`.
fn dispatch_arms(server: &SourceFile) -> Vec<String> {
    let code: Vec<&Token> = server.code_tokens().map(|(_, t)| t).collect();
    let mut out = Vec::new();
    for i in 0..code.len() {
        if let Some(variant) = opcode_path_at(&code, i) {
            // The variant ident sits at i+3; an arm continues with `=>` or `|`.
            let after = code.get(i + 4);
            let is_arm = match after {
                Some(t) if t.is_punct('|') => true,
                Some(t) if t.is_punct('=') => code.get(i + 5).is_some_and(|n| n.is_punct('>')),
                _ => false,
            };
            if is_arm && !out.contains(&variant) {
                out.push(variant);
            }
        }
    }
    out
}

/// All `Opcode::V` path references in a file.
fn opcode_mentions(file: &SourceFile) -> Vec<String> {
    let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    (0..code.len()).filter_map(|i| opcode_path_at(&code, i)).collect()
}

/// `Opcode::V` references outside `enum Opcode` and `impl ... Opcode`
/// blocks (so `ALL`, `name()`, and `TryFrom` don't vacuously satisfy the
/// cross-check) and outside test code.
fn opcode_mentions_outside_own_impls(file: &SourceFile) -> Vec<String> {
    let code: Vec<&Token> = file.code_tokens().map(|(_, t)| t).collect();
    // Mark token ranges of `enum Opcode {...}` and any `impl` whose header
    // mentions Opcode.
    let mut skip = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let header_start = if code[i].is_ident("enum")
            && code.get(i + 1).is_some_and(|t| t.is_ident("Opcode"))
        {
            Some(i)
        } else if code[i].is_ident("impl") {
            // Scan header to `{`; does it mention Opcode?
            let mut j = i + 1;
            let mut mentions = false;
            while j < code.len() && !code[j].is_punct('{') {
                if code[j].is_ident("Opcode") {
                    mentions = true;
                }
                j += 1;
            }
            if mentions {
                Some(i)
            } else {
                None
            }
        } else {
            None
        };
        if let Some(start) = header_start {
            // Mark through the matched brace block.
            let mut depth = 0usize;
            let mut j = start;
            while j < code.len() {
                skip[j] = true;
                if code[j].is_punct('{') {
                    depth += 1;
                } else if code[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    (0..code.len())
        .filter(|&i| !skip[i] && !file.in_test_code(code[i].line))
        .filter_map(|i| opcode_path_at(&code, i))
        .collect()
}

/// If `code[i..]` spells `Opcode :: V`, returns `V`.
fn opcode_path_at(code: &[&Token], i: usize) -> Option<String> {
    if code.get(i)?.is_ident("Opcode")
        && code.get(i + 1)?.is_punct(':')
        && code.get(i + 2)?.is_punct(':')
    {
        let v = code.get(i + 3)?;
        if v.kind == TokenKind::Ident && v.text.chars().next().is_some_and(|c| c.is_uppercase()) {
            return Some(v.text.clone());
        }
    }
    None
}
