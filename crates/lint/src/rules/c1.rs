//! C1 — truncating-cast audit on wire paths.
//!
//! PR 1 shipped (and fixed) a `transfer_time` overflow caused by arithmetic
//! on a silently narrowed byte count. This rule flags `as u8/u16/u32/usize`
//! casts whose source expression mentions a length-ish identifier (`len`,
//! `size`, `bytes`, `capacity`, `remaining`) inside the `net`/`store`
//! crates. The fix is a checked `try_from` with a protocol error on
//! overflow; a cast that is provably bounded carries an
//! `mmlib-lint: allow(C1, reason)` pragma instead.

use crate::lexer::{Token, TokenKind};
use crate::rules::{Violation, C1_CRATES};
use crate::source::SourceFile;

/// Narrowing targets. `usize` is included because wire lengths are `u64`
/// and 32-bit targets truncate them.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "usize"];

/// Substrings that mark an identifier as a byte-length/size value.
const LENGTH_MARKERS: &[&str] = &["len", "size", "byte", "capacity", "remaining"];

/// Tokens that end the backward scan for the cast's source expression.
fn is_expr_stopper(t: &Token) -> bool {
    if t.kind == TokenKind::Punct {
        return matches!(t.text.as_str(), ";" | "," | "=" | "{" | "[" | "<" | ">" | "?" | ":");
    }
    t.kind == TokenKind::Ident
        && matches!(t.text.as_str(), "let" | "return" | "if" | "match" | "while" | "in" | "as")
}

pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    if !C1_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("as") || file.in_test_code(t.line) {
            continue;
        }
        let Some(target) = code.get(i + 1) else { continue };
        if target.kind != TokenKind::Ident || !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        if let Some(culprit) = find_length_source(&code, i) {
            out.push(Violation::at(
                "C1",
                file,
                t.line,
                t.col,
                format!(
                    "`{culprit} ... as {}` silently truncates a byte length on the \
                     wire path — use `{}::try_from(...)` and surface an overflow \
                     error, or annotate with `mmlib-lint: allow(C1, reason)`",
                    target.text, target.text
                ),
            ));
        }
    }
}

/// Walks backwards from the `as` token through the cast's source
/// expression, returning the first length-ish identifier it contains.
/// Balanced `(...)` groups are traversed (their contents scanned too);
/// the scan stops at an expression boundary or after a bounded window.
fn find_length_source(code: &[&Token], as_idx: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut steps = 0usize;
    let mut j = as_idx;
    while j > 0 && steps < 24 {
        j -= 1;
        steps += 1;
        let t = code[j];
        if t.is_punct(')') {
            depth += 1;
            continue;
        }
        if t.is_punct('(') {
            if depth == 0 {
                // Opening paren of an enclosing call: the cast source
                // begins after it.
                return None;
            }
            depth -= 1;
            continue;
        }
        if depth == 0 && is_expr_stopper(t) {
            return None;
        }
        if t.kind == TokenKind::Ident {
            let lower = t.text.to_lowercase();
            if LENGTH_MARKERS.iter().any(|m| lower.contains(m)) {
                return Some(t.text.clone());
            }
        }
    }
    None
}
