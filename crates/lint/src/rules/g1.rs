//! G1 — guard-balance for declared paired-accounting APIs.
//!
//! PR 9's review found the admission budget leaking on dead uploads:
//! `admit` charged the budget on one path and only some of the N exit
//! paths gave it back. That bug shape — *acquire on one path, release on
//! most-but-not-all others* — is exactly what a reviewer misses and a
//! structural check does not.
//!
//! Pairs are declared in `lint-pairs.txt` (see [`crate::pairs`] for the
//! format). For every library function in the pair's crate that calls
//! the acquire side, G1 requires one of:
//!
//! * the function is a declared **owner** (it hands the obligation off —
//!   to a connection's pending set, a returned staging token, ...);
//! * **scope=fn**: the function also calls the release side, and no
//!   `return` or `?` sits between the acquire call and the release call
//!   (each such token is an exit edge on which the release is skipped).
//!   A `?` directly on the acquire call itself is exempt: on that edge
//!   the resource was never obtained;
//! * **scope=block**: every acquire call has a release call in its
//!   innermost `{...}` block — for positional cleanup idioms like the
//!   reap path `let dead = conns.swap_remove(i); release_pending(...)`.

use crate::callgraph::CrateModel;
use crate::pairs::{Pair, PairScope, Pairs};
use crate::rules::Violation;
use crate::source::SourceFile;
use crate::structure;

pub fn check(
    model: &CrateModel,
    files: &[(usize, &SourceFile)],
    pairs: &Pairs,
    out: &mut Vec<Violation>,
) {
    for pair in pairs.pairs.iter().filter(|p| p.krate == model.krate) {
        for f in &model.fns {
            if f.name == pair.acquire || pair.owners.iter().any(|o| o == &f.name) {
                continue;
            }
            let acquires: Vec<usize> =
                f.calls.iter().filter(|c| c.name == pair.acquire).map(|c| c.idx).collect();
            if acquires.is_empty() {
                continue;
            }
            let releases: Vec<usize> =
                f.calls.iter().filter(|c| c.name == pair.release).map(|c| c.idx).collect();
            let file = files[f.file].1;
            match pair.scope {
                PairScope::Fn => check_fn_scope(f, file, pair, &acquires, &releases, out),
                PairScope::Block => check_block_scope(f, file, pair, &acquires, &releases, out),
            }
        }
    }
}

fn check_fn_scope(
    f: &crate::callgraph::FnFacts,
    file: &SourceFile,
    pair: &Pair,
    acquires: &[usize],
    releases: &[usize],
    out: &mut Vec<Violation>,
) {
    let first_acq = acquires[0];
    let at = |idx: usize| (file.tokens[idx].line, file.tokens[idx].col);
    let Some(&release) = releases.iter().find(|&&r| r > first_acq) else {
        let (line, col) = at(first_acq);
        out.push(Violation::at(
            "G1",
            file,
            line,
            col,
            format!(
                "`{}` calls `{}` but never `{}` afterwards — the {}-side obligation \
                 leaks (declare the function an owner in lint-pairs.txt if it hands \
                 the obligation off)",
                f.qualname, pair.acquire, pair.release, pair.acquire
            ),
        ));
        return;
    };
    // `?` on the acquire call itself is exempt: that edge never acquired.
    let toks = &file.tokens;
    let mut scan_from = first_acq + 1;
    if toks.get(first_acq + 1).is_some_and(|t| t.is_punct('(')) {
        if let Some(close) = structure::matching(toks, first_acq + 1, '(', ')') {
            scan_from = close + 1;
            if toks.get(scan_from).is_some_and(|t| t.is_punct('?')) {
                scan_from += 1;
            }
        }
    }
    for t in &toks[scan_from..release] {
        if t.is_ident("return") || t.is_punct('?') {
            let (line, col) = (t.line, t.col);
            out.push(Violation::at(
                "G1",
                file,
                line,
                col,
                format!(
                    "early exit between `{}` and `{}` in `{}` — on this edge the \
                     {}-side obligation is never released",
                    pair.acquire, pair.release, f.qualname, pair.acquire
                ),
            ));
            return; // one finding per function keeps the report readable
        }
    }
}

fn check_block_scope(
    f: &crate::callgraph::FnFacts,
    file: &SourceFile,
    pair: &Pair,
    acquires: &[usize],
    releases: &[usize],
    out: &mut Vec<Violation>,
) {
    let Some((body_open, body_close)) = f.body else { return };
    for &acq in acquires {
        let (lo, hi) = structure::enclosing_block(&file.tokens, body_open, body_close, acq)
            .unwrap_or((body_open, body_close));
        if !releases.iter().any(|&r| r > lo && r < hi) {
            let t = &file.tokens[acq];
            out.push(Violation::at(
                "G1",
                file,
                t.line,
                t.col,
                format!(
                    "`{}` called in `{}` without `{}` in the same block — the \
                     pair is declared scope=block in lint-pairs.txt",
                    pair.acquire, f.qualname, pair.release
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;

    fn run(src: &str, manifest: &str) -> Vec<Violation> {
        let f = SourceFile::new("crates/net/src/lib.rs", src);
        let files = vec![(0usize, &f)];
        let model = build("net", &files);
        let pairs = Pairs::parse(manifest, "test-manifest").unwrap();
        let mut out = Vec::new();
        check(&model, &files, &pairs, &mut out);
        out
    }

    const PAIR_FN: &str = "pair net acquire_slot release_slot\n";

    #[test]
    fn missing_release_is_flagged() {
        let v = run("fn f() { acquire_slot(); work(); }", PAIR_FN);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("never `release_slot`"));
    }

    #[test]
    fn balanced_pair_is_clean() {
        let v = run("fn f() { acquire_slot(); work(); release_slot(); }", PAIR_FN);
        assert!(v.is_empty());
    }

    #[test]
    fn early_question_mark_between_pair_is_flagged() {
        let v = run("fn f() -> R { acquire_slot(); work()?; release_slot(); Ok(()) }", PAIR_FN);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("early exit"));
    }

    #[test]
    fn early_return_between_pair_is_flagged() {
        let v = run(
            "fn f(x: bool) { acquire_slot(); if x { return; } release_slot(); }",
            PAIR_FN,
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn question_mark_on_acquire_itself_is_exempt() {
        let v = run("fn f() -> R { acquire_slot(arg)?; release_slot(); Ok(()) }", PAIR_FN);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn owners_are_exempt() {
        let v = run(
            "fn hand_off() { acquire_slot(); stash(); }",
            "pair net acquire_slot release_slot owner=hand_off\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn the_acquire_fn_itself_is_exempt() {
        // The definition of the acquire side often contains a reserve/undo
        // retry loop mentioning itself in error paths; only *callers* owe
        // the release.
        let v = run("fn acquire_slot() { if busy { acquire_slot(); } }", PAIR_FN);
        assert!(v.is_empty());
    }

    #[test]
    fn block_scope_requires_release_in_same_block() {
        let manifest = "pair net swap_remove release_pending scope=block\n";
        let bad = "fn reap(conns: &mut Vec<C>) {\n\
                   loop {\n  if dead {\n    let d = conns.swap_remove(i);\n  }\n }\n\
                   for c in conns { release_pending(c); }\n}";
        let v = run(bad, manifest);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("same block"));

        let good = "fn reap(conns: &mut Vec<C>) {\n\
                    loop {\n  if dead {\n    let d = conns.swap_remove(i); release_pending(&d);\n  }\n }\n}";
        assert!(run(good, manifest).is_empty());
    }

    #[test]
    fn non_matching_crate_is_ignored() {
        let v = run("fn f() { acquire_slot(); }", "pair store acquire_slot release_slot\n");
        assert!(v.is_empty());
    }
}
