//! M1 — metric-taxonomy cross-check.
//!
//! Every `mmlib_*` metric name registered anywhere in the workspace must
//! appear in the central taxonomy (`crates/obs/src/taxonomy.rs`), be
//! snake_case, and be declared exactly once; and every taxonomy entry must
//! actually be used by library code. This keeps `mmlib stats` expositions
//! self-documenting: the taxonomy is the complete dictionary of what a
//! deployment can scrape.
//!
//! A "metric name" is any string literal matching
//! `mmlib_*` with one of the conventional unit suffixes (`_total`,
//! `_seconds`, `_bytes`) — Prometheus naming the workspace already follows.

use crate::lexer::TokenKind;
use crate::rules::Violation;
use crate::source::SourceFile;

pub const TAXONOMY: &str = "crates/obs/src/taxonomy.rs";

/// Suffixes that mark a `mmlib_*` string literal as a metric name.
const METRIC_SUFFIXES: &[&str] = &["_total", "_seconds", "_bytes"];

pub fn check(files: &[SourceFile], out: &mut Vec<Violation>) {
    let usages: Vec<(&SourceFile, usize, usize, String)> = files
        .iter()
        .filter(|f| f.kind == crate::source::FileKind::Lib && f.path != TAXONOMY)
        .flat_map(|f| {
            f.code_tokens()
                .filter(|(_, t)| {
                    t.kind == TokenKind::Str
                        && is_metric_name_shape(&t.text)
                        && !f.in_test_code(t.line)
                })
                .map(move |(_, t)| (f, t.line, t.col, t.text.clone()))
                .collect::<Vec<_>>()
        })
        .collect();

    let Some(taxonomy) = files.iter().find(|f| f.path == TAXONOMY) else {
        // No taxonomy file: every metric literal is undeclared.
        for (f, line, col, name) in &usages {
            out.push(Violation::at(
                "M1",
                f,
                *line,
                *col,
                format!(
                    "metric `{name}` is registered but {TAXONOMY} does not exist — \
                     declare every metric in the central taxonomy"
                ),
            ));
        }
        return;
    };

    // The taxonomy's declared names, in order of appearance. Only
    // metric-shaped literals outside test code count — the taxonomy's own
    // unit tests mention names without declaring them.
    let mut declared: Vec<(String, usize)> = Vec::new();
    for (_, t) in taxonomy.code_tokens() {
        if t.kind == TokenKind::Str
            && is_metric_name_shape(&t.text)
            && !taxonomy.in_test_code(t.line)
        {
            declared.push((t.text.clone(), t.line));
        }
    }

    for (i, (name, line)) in declared.iter().enumerate() {
        if !is_snake_case(name) {
            out.push(Violation::at(
                "M1",
                taxonomy,
                *line,
                0,
                format!("taxonomy metric `{name}` is not snake_case"),
            ));
        }
        if declared[..i].iter().any(|(n, _)| n == name) {
            out.push(Violation::at(
                "M1",
                taxonomy,
                *line,
                0,
                format!("taxonomy metric `{name}` is declared more than once"),
            ));
        }
    }

    let declared_names: Vec<&String> = declared.iter().map(|(n, _)| n).collect();
    for (f, line, col, name) in &usages {
        if !declared_names.contains(&name) {
            out.push(Violation::at(
                "M1",
                f,
                *line,
                *col,
                format!(
                    "metric `{name}` is registered here but missing from the \
                     taxonomy ({TAXONOMY}) — add it with a help string"
                ),
            ));
        }
    }
    for (name, line) in &declared {
        if !usages.iter().any(|(_, _, _, n)| n == name) {
            out.push(Violation::at(
                "M1",
                taxonomy,
                *line,
                0,
                format!(
                    "taxonomy metric `{name}` is declared but never registered by \
                     library code — dead taxonomy entries drift from reality"
                ),
            ));
        }
    }
}

/// Does a string literal look like a metric name?
fn is_metric_name_shape(s: &str) -> bool {
    s.starts_with("mmlib_") && METRIC_SUFFIXES.iter().any(|suf| s.ends_with(suf))
}

fn is_snake_case(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !s.contains("__")
}
