//! P1 — panic-freedom in library code.
//!
//! A panic in `mmlib-net` kills a worker thread mid-connection; a panic in
//! `mmlib-obs` poisons the registry lock for every later recorder; a panic
//! anywhere on the save/recover path aborts work that an `Err` would have
//! let the caller retry. Library code of the panic-free crates must not
//! call `unwrap`/`expect` or invoke the panicking macros. Sites whose
//! invariant genuinely cannot be expressed as an error carry a
//! `// mmlib-lint: allow(P1, reason)` pragma, counted against the ratchet.
//!
//! `assert!`/`debug_assert!` stay legal: contract checks at API boundaries
//! are documented panics, not accidental ones.

use crate::lexer::TokenKind;
use crate::rules::{Violation, P1_CRATES};
use crate::source::SourceFile;

/// Method calls that panic: flagged as `.name(` to skip `unwrap_or`,
/// free functions named `unwrap`, and struct fields.
const PANICKING_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that panic unconditionally when reached.
const PANICKING_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    if !P1_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        let name = t.text.as_str();
        let prev_dot = i > 0 && code[i - 1].is_punct('.');
        let next = code.get(i + 1);
        if PANICKING_METHODS.contains(&name)
            && prev_dot
            && next.is_some_and(|n| n.is_punct('('))
        {
            out.push(Violation::at(
                "P1",
                file,
                t.line,
                t.col,
                format!(
                    ".{name}() in `{}` library code can panic — propagate an error \
                     (`?`, `ok_or_else`) or annotate with `mmlib-lint: allow(P1, reason)`",
                    file.crate_name
                ),
            ));
        }
        if PANICKING_MACROS.contains(&name) && next.is_some_and(|n| n.is_punct('!')) {
            out.push(Violation::at(
                "P1",
                file,
                t.line,
                t.col,
                format!(
                    "{name}! in `{}` library code — return an error instead of \
                     aborting the caller's thread",
                    file.crate_name
                ),
            ));
        }
    }
}
