//! F1 — `#![forbid(unsafe_code)]` in every non-shim crate root.
//!
//! The whole workspace is safe Rust by construction (even the SHA-256 and
//! f32 byte plumbing go through safe chunked conversion); this rule makes
//! that permanent by requiring the forbid attribute in each crate's
//! `src/lib.rs`. Shim crates are exempt (they mirror external APIs).

use crate::rules::Violation;
use crate::source::SourceFile;

/// Checks one crate-root file (`src/lib.rs`). The engine calls this only
/// for crate roots.
pub fn check(file: &SourceFile, out: &mut Vec<Violation>) {
    let code: Vec<_> = file.code_tokens().map(|(_, t)| t).collect();
    // Look for `# ! [ forbid ( unsafe_code ) ]` anywhere (it must be an
    // inner attribute to compile, so position is rustc's problem).
    let found = code.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
    });
    if !found {
        out.push(Violation {
            rule: "F1",
            path: file.path.clone(),
            line: 0,
            col: 0,
            message: format!(
                "crate `{}` root is missing `#![forbid(unsafe_code)]`",
                file.crate_name
            ),
            snippet: String::new(),
        });
    }
}
