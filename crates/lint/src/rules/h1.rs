//! H1 — I/O while holding a lock.
//!
//! Socket or file I/O under a live lock guard couples every other thread
//! contending for that lock to the kernel's timing: a slow peer or a
//! saturated disk turns a microsecond critical section into a stall of
//! the whole accept loop (the PR 9 server multiplexes hundreds of
//! connections over a handful of threads, so one blocked guard-holder
//! starves them all).
//!
//! Flagged shapes, using the per-crate model from [`crate::callgraph`]:
//!
//! * a direct I/O site (`write_all`, `read`/`write` with arguments,
//!   `flush`, `sync_all`/`sync_data`/`fsync`, any `fs::*` call) while the
//!   held-lock set is non-empty;
//! * a resolvable call (free or `self.`) made with a lock held to a
//!   function that transitively performs I/O.
//!
//! Sites that are deliberate — a nonblocking socket write, a directory
//! scan serialized by design — carry `// mmlib-lint: allow(H1, reason)`
//! pragmas counted against the ratchet budget.

use crate::callgraph::{call_resolves, CrateModel};
use crate::rules::Violation;
use crate::source::SourceFile;

pub fn check(model: &CrateModel, files: &[(usize, &SourceFile)], out: &mut Vec<Violation>) {
    for f in &model.fns {
        let file = files[f.file].1;
        for io in &f.io {
            if io.held.is_empty() {
                continue;
            }
            out.push(Violation::at(
                "H1",
                file,
                io.line,
                io.col,
                format!(
                    "`{}` I/O in `{}` while holding lock `{}` — the guard couples \
                     lock waiters to I/O latency",
                    io.what,
                    f.qualname,
                    io.held.join("`, `")
                ),
            ));
        }
        for c in &f.calls {
            if c.held.is_empty() || !call_resolves(&model.fns, c) {
                continue;
            }
            if model.trans_io.get(&c.name).copied().unwrap_or(false) {
                out.push(Violation::at(
                    "H1",
                    file,
                    c.line,
                    c.col,
                    format!(
                        "`{}` calls `{}` while holding lock `{}`, and `{}` \
                         (transitively) performs I/O",
                        f.qualname,
                        c.name,
                        c.held.join("`, `"),
                        c.name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;

    fn run(src: &str) -> Vec<Violation> {
        let f = SourceFile::new("crates/net/src/lib.rs", src);
        let files = vec![(0usize, &f)];
        let model = build("net", &files);
        let mut out = Vec::new();
        check(&model, &files, &mut out);
        out
    }

    const DECLS: &str = "struct S { out: Mutex<Q> }\n";

    #[test]
    fn write_under_guard_is_flagged() {
        let src = format!(
            "{DECLS}impl S {{ fn flush(&self, s: &mut TcpStream) {{ \
             let g = self.out.lock(); s.write(&g.buf); }} }}"
        );
        let v = run(&src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`write` I/O"));
        assert!(v[0].message.contains("`out`"));
    }

    #[test]
    fn write_after_guard_drops_is_clean() {
        let src = format!(
            "{DECLS}impl S {{ fn flush(&self, s: &mut TcpStream) {{ \
             let buf = {{ let g = self.out.lock(); g.take() }}; s.write_all(&buf); }} }}"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn transitive_io_through_call_edge() {
        let src = format!(
            "{DECLS}impl S {{\n\
             fn emit(&self, s: &mut T) {{ s.write_all(b\"x\"); }}\n\
             fn f(&self, s: &mut T) {{ let g = self.out.lock(); self.emit(s); }}\n\
             }}"
        );
        let v = run(&src);
        assert!(v.iter().any(|v| v.message.contains("calls `emit`")), "{v:?}");
    }

    #[test]
    fn io_with_no_lock_held_is_clean() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self, s: &mut T) {{ s.write_all(b\"x\"); s.flush(); }} }}"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn fs_call_under_guard_is_flagged() {
        let src = format!(
            "{DECLS}impl S {{ fn ids(&self) {{ let _g = self.out.lock(); \
             let e = std::fs::read_dir(&self.dir); }} }}"
        );
        let v = run(&src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("fs::read_dir"));
    }

    #[test]
    fn fmt_write_macro_is_not_io() {
        let src = format!(
            "{DECLS}impl S {{ fn render(&self) {{ let g = self.out.lock(); \
             writeln!(buf, \"x\"); }} }}"
        );
        assert!(run(&src).is_empty());
    }
}
