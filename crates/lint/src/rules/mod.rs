//! The rule catalogue.
//!
//! | id | name                  | scope                                   |
//! |----|-----------------------|-----------------------------------------|
//! | D1 | determinism hygiene   | `tensor`, `train`, `model` library code |
//! | P1 | panic-freedom         | `core`, `net`, `store`, `tensor`, `dist`, `obs`, `lineage` library code |
//! | C1 | truncating-cast audit | `net`, `store` library code             |
//! | F1 | unsafe-code forbid    | every non-shim crate root               |
//! | X1 | protocol cross-check  | `net` (protocol/server/client/tests)    |
//! | M1 | metric taxonomy       | every non-shim crate                    |
//! | L1 | lock-order analysis   | concurrent crates (see `l1::CONCURRENT_CRATES`) |
//! | H1 | I/O under a held lock | concurrent crates (see `l1::CONCURRENT_CRATES`) |
//! | G1 | guard-balance pairs   | crates named in `lint-pairs.txt`        |
//!
//! D1/P1/C1 are per-file token scans; F1/X1/M1 need the whole workspace;
//! L1/H1/G1 run on the per-crate structural model (`crate::callgraph`).

pub mod c1;
pub mod d1;
pub mod f1;
pub mod g1;
pub mod h1;
pub mod l1;
pub mod m1;
pub mod p1;
pub mod x1;

use crate::source::SourceFile;

/// Crates whose hashing/replay paths must be deterministic (PAPER.md §4.3:
/// recovery re-executes training and must reproduce bit-identical weights).
pub const D1_CRATES: &[&str] = &["tensor", "train", "model"];

/// Crates whose library code must not panic: a panic in these kills worker
/// threads mid-connection (net), poisons locks (obs), or aborts a recovery
/// that error handling would have survived (core/store/tensor/dist).
pub const P1_CRATES: &[&str] = &["core", "net", "store", "tensor", "dist", "obs", "lineage"];

/// Crates carrying wire formats, where a silently truncating cast on a byte
/// length is the PR 1 `transfer_time`-overflow bug class.
pub const C1_CRATES: &[&str] = &["net", "store"];

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id (`"D1"`, ... or `"LINT"` for meta findings).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 = whole file).
    pub line: usize,
    /// 1-based column (0 = whole line).
    pub col: usize,
    pub message: String,
    /// The trimmed source line, for context.
    pub snippet: String,
}

impl Violation {
    pub fn at(rule: &'static str, file: &SourceFile, line: usize, col: usize, message: String) -> Violation {
        Violation { rule, path: file.path.clone(), line, col, message, snippet: file.snippet(line) }
    }
}
