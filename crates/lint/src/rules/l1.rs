//! L1 — lock-order analysis.
//!
//! Over each crate's concurrency model ([`crate::callgraph`]) this rule
//! flags three deadlock shapes:
//!
//! 1. **Direct double-acquisition** — a lock acquired while a guard for
//!    the same lock is already live in the function. With `parking_lot`
//!    primitives (non-reentrant) this deadlocks the thread outright; with
//!    `std::sync` it is documented UB-or-deadlock.
//! 2. **Call-edge double-acquisition** — a call made while holding lock
//!    `x` to a function whose *transitive* acquisition set contains `x`.
//!    Same deadlock, hidden behind one or more call edges.
//! 3. **Acquisition-order cycles** — `a` taken while `b` is held on one
//!    path and `b` taken while `a` is held on another. Each path is fine
//!    alone; two threads interleaving them deadlock.
//!
//! Order edges are collected from direct acquisitions and propagated
//! across resolvable intra-crate call edges (free calls and
//! `self.method(...)` — see the callgraph module for why other receivers
//! are excluded).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{call_resolves, CrateModel};
use crate::rules::Violation;
use crate::source::SourceFile;

/// Crates with real cross-thread locking, subject to L1 and H1.
pub const CONCURRENT_CRATES: &[&str] = &["core", "dist", "lineage", "net", "obs", "store"];

pub fn check(model: &CrateModel, files: &[(usize, &SourceFile)], out: &mut Vec<Violation>) {
    // (held, acquired) -> first site, for cycle reporting.
    let mut edges: BTreeMap<(String, String), (usize, usize, usize)> = BTreeMap::new();
    let edge = |held: &str, acq: &str, site: (usize, usize, usize),
                    edges: &mut BTreeMap<(String, String), (usize, usize, usize)>| {
        edges.entry((held.to_string(), acq.to_string())).or_insert(site);
    };

    for f in &model.fns {
        let file = files[f.file].1;
        for a in &f.acquires {
            if a.held.iter().any(|h| h == &a.lock) {
                out.push(Violation::at(
                    "L1",
                    file,
                    a.line,
                    a.col,
                    format!(
                        "lock `{}` acquired while a guard for it is already live in \
                         `{}` — self-deadlock (non-reentrant mutex)",
                        a.lock, f.qualname
                    ),
                ));
            }
            for h in &a.held {
                if h != &a.lock {
                    edge(h, &a.lock, (f.file, a.line, a.col), &mut edges);
                }
            }
        }
        for c in &f.calls {
            if c.held.is_empty() || !call_resolves(&model.fns, c) {
                continue;
            }
            let Some(callee_locks) = model.trans_acquires.get(&c.name) else { continue };
            for h in &c.held {
                if callee_locks.contains(h) {
                    out.push(Violation::at(
                        "L1",
                        file,
                        c.line,
                        c.col,
                        format!(
                            "`{}` calls `{}` while holding lock `{h}`, and `{}` \
                             (transitively) acquires `{h}` — self-deadlock across \
                             the call edge",
                            f.qualname, c.name, c.name
                        ),
                    ));
                }
                for t in callee_locks {
                    if t != h && !c.held.contains(t) {
                        edge(h, t, (f.file, c.line, c.col), &mut edges);
                    }
                }
            }
        }
    }

    for cycle in find_cycles(&edges) {
        let (file_idx, line, col) = edges[&(cycle[0].clone(), cycle[1].clone())];
        let file = files[file_idx].1;
        let mut path = cycle.join(" -> ");
        path.push_str(" -> ");
        path.push_str(&cycle[0]);
        out.push(Violation::at(
            "L1",
            file,
            line,
            col,
            format!(
                "lock acquisition-order cycle in crate `{}`: {path} — two threads \
                 interleaving these paths deadlock",
                model.krate
            ),
        ));
    }
}

/// Finds elementary cycles in the order graph, deduplicated by rotation
/// (each reported once, starting from its lexically smallest node).
/// Returned in deterministic order.
fn find_cycles(edges: &BTreeMap<(String, String), (usize, usize, usize)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut stack: Vec<&str> = vec![start];
        dfs(start, start, &adj, &mut stack, &mut seen, &mut out);
    }
    out
}

fn dfs<'a>(
    start: &'a str,
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    stack: &mut Vec<&'a str>,
    seen: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if next == start {
            let cycle: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
            // Canonicalize: only record the rotation starting at the
            // smallest node, so each cycle is reported exactly once.
            if cycle.iter().min() == cycle.first() {
                let mut key = cycle.clone();
                key.sort();
                if seen.insert(key) {
                    out.push(cycle);
                }
            }
        } else if !stack.contains(&next) {
            stack.push(next);
            dfs(start, next, adj, stack, seen, out);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;

    fn run(src: &str) -> Vec<Violation> {
        let f = SourceFile::new("crates/net/src/lib.rs", src);
        let files = vec![(0usize, &f)];
        let model = build("net", &files);
        let mut out = Vec::new();
        check(&model, &files, &mut out);
        out
    }

    const DECLS: &str = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n";

    #[test]
    fn direct_double_acquisition() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self) {{ let g = self.a.lock(); let h = self.a.lock(); }} }}"
        );
        let v = run(&src);
        assert!(v.iter().any(|v| v.rule == "L1" && v.message.contains("self-deadlock")), "{v:?}");
    }

    #[test]
    fn call_edge_double_acquisition() {
        let src = format!(
            "{DECLS}impl S {{\n\
             fn leaf(&self) {{ let g = self.a.lock(); }}\n\
             fn caller(&self) {{ let g = self.a.lock(); self.leaf(); }}\n\
             }}"
        );
        let v = run(&src);
        assert!(v.iter().any(|v| v.message.contains("across the call edge")), "{v:?}");
    }

    #[test]
    fn order_cycle_across_two_fns() {
        let src = format!(
            "{DECLS}impl S {{\n\
             fn ab(&self) {{ let g = self.a.lock(); let h = self.b.lock(); }}\n\
             fn ba(&self) {{ let h = self.b.lock(); let g = self.a.lock(); }}\n\
             }}"
        );
        let v = run(&src);
        assert!(v.iter().any(|v| v.message.contains("acquisition-order cycle")), "{v:?}");
        assert!(v.iter().any(|v| v.message.contains("a -> b -> a")), "{v:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{DECLS}impl S {{\n\
             fn one(&self) {{ let g = self.a.lock(); let h = self.b.lock(); }}\n\
             fn two(&self) {{ let g = self.a.lock(); let h = self.b.lock(); }}\n\
             }}"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn sequential_acquisitions_are_clean() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self) {{ self.a.lock().push(1); self.a.lock().push(2); }} }}"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn dropped_guard_allows_reacquisition() {
        let src = format!(
            "{DECLS}impl S {{ fn f(&self) {{ let g = self.a.lock(); drop(g); \
             let h = self.a.lock(); }} }}"
        );
        assert!(run(&src).is_empty());
    }
}
