//! Gate tests: the lint holds the line on the *real* workspace.
//!
//! These load actual source files from the repository, mutate them in
//! memory, and assert the gate catches the regression — the acceptance
//! criteria for the lint as a CI gate.

use std::path::PathBuf;

use mmlib_lint::{report, Budget, Pairs, Workspace};

fn root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(root().join(rel)).unwrap()
}

/// The committed tree passes its own gate with the committed budget and
/// the committed G1 pair manifest.
#[test]
fn real_workspace_is_clean_under_the_committed_budget() {
    let root = root();
    let ws = Workspace::load(&root).unwrap();
    let budget = Budget::load(&root.join("lint-budget.txt")).unwrap();
    let pairs = Pairs::load(&root.join("lint-pairs.txt")).unwrap();
    let r = ws.check_full(&budget, &pairs);
    assert!(r.clean(), "workspace lint violations:\n{}", report::render_text(&r));
    assert!(r.files_scanned > 50, "workspace scan looks truncated: {}", r.files_scanned);
}

/// Acceptance check: re-introducing a wall-clock read into mmlib-tensor
/// fails the gate.
#[test]
fn reintroducing_wall_clock_in_tensor_fails_d1() {
    let mut text = read("crates/tensor/src/hash.rs");
    text.push_str(
        "\npub fn leaked_stamp() -> std::time::SystemTime { std::time::SystemTime::now() }\n",
    );
    let ws = Workspace::from_memory(vec![("crates/tensor/src/hash.rs".to_string(), text)]);
    let r = ws.check(&Budget::zero());
    assert!(
        r.violations.iter().any(|v| v.rule == "D1" && v.message.contains("SystemTime::now")),
        "{}",
        report::render_text(&r)
    );
}

/// Acceptance check: deleting a server dispatch arm (here: retargeting
/// `DocRemove`'s arm so the opcode no longer dispatches) fails the gate.
#[test]
fn deleting_a_server_dispatch_arm_fails_x1() {
    let server = read("crates/net/src/server.rs");
    assert!(server.contains("Opcode::DocRemove =>"), "dispatch arm moved; update this test");
    let files = vec![
        ("crates/net/src/protocol.rs".to_string(), read("crates/net/src/protocol.rs")),
        (
            "crates/net/src/server.rs".to_string(),
            server.replace("Opcode::DocRemove =>", "Opcode::DocGet =>"),
        ),
        ("crates/net/src/client.rs".to_string(), read("crates/net/src/client.rs")),
        (
            "crates/net/tests/opcode_coverage.rs".to_string(),
            read("crates/net/tests/opcode_coverage.rs"),
        ),
    ];
    let r = Workspace::from_memory(files).check(&Budget::zero());
    assert!(
        r.violations
            .iter()
            .any(|v| v.rule == "X1" && v.message.contains("`DocRemove` has no dispatch arm")),
        "{}",
        report::render_text(&r)
    );
}

/// Acceptance check (issue seeded mutation): moving the post-dispatch
/// `flush_out` call inside the out-guard block in `service_conn` makes the
/// server call a function that re-acquires the lock it is holding — L1
/// must catch the reordering. The unmutated file is L1-clean.
#[test]
fn holding_the_out_guard_across_flush_out_fails_l1() {
    let server = read("crates/net/src/server.rs");
    let anchor = "    active |= flush_out(state, conn)?;\n\n    {\n        let out = conn.shared.out.lock();";
    assert!(server.contains(anchor), "service_conn flush/guard sequence moved; update this test");

    let l1_of = |text: String| {
        let ws = Workspace::from_memory(vec![("crates/net/src/server.rs".to_string(), text)]);
        let r = ws.check(&Budget::zero());
        r.violations.iter().filter(|v| v.rule == "L1").count()
    };

    assert_eq!(l1_of(server.clone()), 0, "unmutated server.rs must be L1-clean");

    let mutated = server.replace(
        anchor,
        "    {\n        let out = conn.shared.out.lock();\n        active |= flush_out(state, conn)?;",
    );
    assert!(
        l1_of(mutated) > 0,
        "reordering flush_out under the out guard must fail L1 (call-edge double-acquisition)"
    );
}

/// Acceptance check (issue seeded mutation): deleting the
/// `release_pending` call from the dead-connection reap path re-opens the
/// PR-9 admission-budget leak — the `swap_remove`/`release_pending`
/// scope=block pair in lint-pairs.txt must catch it.
#[test]
fn removing_release_pending_from_the_reap_path_fails_g1() {
    let root = root();
    let server = read("crates/net/src/server.rs");
    let anchor = "let dead = conns.swap_remove(i);\n                    release_pending(state, &dead);";
    assert!(server.contains(anchor), "reap path moved; update this test");

    let pairs = Pairs::load(&root.join("lint-pairs.txt")).unwrap();
    let g1_of = |text: String| {
        let ws = Workspace::from_memory(vec![("crates/net/src/server.rs".to_string(), text)]);
        let r = ws.check_full(&Budget::zero(), &pairs);
        r.violations
            .iter()
            .filter(|v| v.rule == "G1")
            .map(|v| v.message.clone())
            .collect::<Vec<_>>()
    };

    assert!(g1_of(server.clone()).is_empty(), "unmutated server.rs must be G1-clean");

    let mutated = server.replace(anchor, "let dead = conns.swap_remove(i);");
    let findings = g1_of(mutated);
    assert!(
        findings.iter().any(|m| m.contains("`swap_remove`")
            && m.contains("without `release_pending` in the same block")),
        "removing release_pending must fail G1: {findings:#?}"
    );
}

/// A pragma suppresses its violation but counts against the ratchet; the
/// zero budget rejects it, a budget of one admits it.
#[test]
fn ratchet_admits_exactly_the_budgeted_pragmas() {
    let file = "pub fn f(v: Option<u8>) -> u8 {\n    \
                v.unwrap() // mmlib-lint: allow(P1, fixture: v is checked by the caller)\n\
                }\n";
    let ws = Workspace::from_memory(vec![("crates/net/src/x.rs".to_string(), file.to_string())]);

    let over = ws.check(&Budget::zero());
    assert!(
        over.violations
            .iter()
            .any(|v| v.rule == "LINT" && v.message.contains("ratchet exceeded for P1")),
        "{}",
        report::render_text(&over)
    );

    let within = ws.check(&Budget::parse("P1 1\n", "test-budget").unwrap());
    assert!(within.clean(), "{}", report::render_text(&within));
    assert_eq!(within.allowed.len(), 1);
    assert_eq!(within.allow_counts.get("P1"), Some(&1));
}

/// Stale pragmas (suppressing nothing) and malformed pragmas are
/// themselves violations — the annotation layer cannot rot silently.
#[test]
fn stale_and_malformed_pragmas_are_violations() {
    let file = "// mmlib-lint: allow(P1, nothing on the next line panics)\n\
                pub fn ok() {}\n\
                // mmlib-lint: allow(P1)\n";
    let ws = Workspace::from_memory(vec![("crates/net/src/x.rs".to_string(), file.to_string())]);
    let r = ws.check(&Budget::parse("P1 5\n", "test-budget").unwrap());
    let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("stale pragma")), "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("malformed mmlib-lint pragma")), "{msgs:#?}");
}

/// A file-scope pragma suppresses every match in the file but counts as
/// ONE pragma against the ratchet (the budget's unit is pragmas, not
/// suppressed findings).
#[test]
fn allow_file_suppresses_many_but_counts_once() {
    let file = "// mmlib-lint: allow-file(D1, fixture: a timing module)\n\
                pub fn a() -> std::time::Instant { std::time::Instant::now() }\n\
                pub fn b() -> std::time::Instant { std::time::Instant::now() }\n";
    let ws = Workspace::from_memory(vec![("crates/train/src/t.rs".to_string(), file.to_string())]);
    let r = ws.check(&Budget::parse("D1 1\n", "test-budget").unwrap());
    assert!(r.clean(), "{}", report::render_text(&r));
    assert_eq!(r.allowed.len(), 2);
    assert_eq!(r.allow_counts.get("D1"), Some(&1));
}

#[test]
fn budget_parser_rejects_garbage_and_reads_comments() {
    assert!(Budget::parse("P1", "t").is_err());
    assert!(Budget::parse("P1 x", "t").is_err());
    assert!(Budget::parse("P1 1 extra", "t").is_err());
    let b = Budget::parse("# header\nP1 2 # trailing comment\n\nC1 0\n", "t").unwrap();
    assert_eq!(b.limit("P1"), 2);
    assert_eq!(b.limit("C1"), 0);
    assert_eq!(b.limit("D1"), 0, "unlisted rules default to zero");
}
