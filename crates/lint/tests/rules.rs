//! Per-rule self-tests: each rule fires on its bad fixture and stays
//! silent on the good one. File-scoped rules (D1/P1/C1/F1) use on-disk
//! fixtures under `tests/fixtures/`; the workspace-level rules (X1/M1)
//! use small in-memory workspaces.

use mmlib_lint::{Budget, Pairs, Report, Workspace};

fn check_one(path: &str, text: &str) -> Report {
    Workspace::from_memory(vec![(path.to_string(), text.to_string())]).check(&Budget::zero())
}

fn check_one_with_pairs(path: &str, text: &str, manifest: &str) -> Report {
    let pairs = Pairs::parse(manifest, "test-manifest").unwrap();
    Workspace::from_memory(vec![(path.to_string(), text.to_string())])
        .check_full(&Budget::zero(), &pairs)
}

fn rules(report: &Report) -> Vec<&str> {
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn d1_fires_on_wall_clock_and_entropy_in_tensor() {
    let r = check_one("crates/tensor/src/seed.rs", include_str!("fixtures/d1_bad.rs"));
    assert_eq!(rules(&r), vec!["D1", "D1"], "{:#?}", r.violations);
    assert!(r.violations[0].message.contains("SystemTime::now"));
    assert!(r.violations[1].message.contains("thread_rng"));
}

#[test]
fn d1_silent_on_explicit_seeding_and_test_code() {
    let r = check_one("crates/tensor/src/seed.rs", include_str!("fixtures/d1_good.rs"));
    assert!(r.clean(), "{:#?}", r.violations);
}

#[test]
fn d1_ignores_non_deterministic_crates() {
    // The same wall-clock read in `obs` (not a D1 crate) is legal.
    let r = check_one("crates/bench/src/seed.rs", include_str!("fixtures/d1_bad.rs"));
    assert!(!rules(&r).contains(&"D1"), "{:#?}", r.violations);
}

#[test]
fn p1_fires_on_unwrap_and_todo_in_net() {
    let r = check_one("crates/net/src/handler.rs", include_str!("fixtures/p1_bad.rs"));
    assert_eq!(rules(&r), vec!["P1", "P1"], "{:#?}", r.violations);
    assert!(r.violations[0].message.contains(".unwrap()"));
    assert!(r.violations[1].message.contains("todo!"));
}

#[test]
fn p1_silent_on_propagated_errors_and_unwrap_or() {
    let r = check_one("crates/net/src/handler.rs", include_str!("fixtures/p1_good.rs"));
    assert!(r.clean(), "{:#?}", r.violations);
}

#[test]
fn p1_exempts_integration_test_files_entirely() {
    let r = check_one("crates/net/tests/handler.rs", include_str!("fixtures/p1_bad.rs"));
    assert!(r.clean(), "{:#?}", r.violations);
}

#[test]
fn c1_fires_on_truncating_length_cast_in_net() {
    let r = check_one("crates/net/src/framing.rs", include_str!("fixtures/c1_bad.rs"));
    assert_eq!(rules(&r), vec!["C1"], "{:#?}", r.violations);
    assert!(r.violations[0].message.contains("try_from"));
}

#[test]
fn c1_silent_on_checked_conversion_and_non_length_casts() {
    let r = check_one("crates/net/src/framing.rs", include_str!("fixtures/c1_good.rs"));
    assert!(r.clean(), "{:#?}", r.violations);
}

#[test]
fn f1_fires_on_crate_root_missing_the_forbid() {
    let r = check_one("crates/data/src/lib.rs", include_str!("fixtures/f1_bad.rs"));
    assert_eq!(rules(&r), vec!["F1"], "{:#?}", r.violations);
}

#[test]
fn f1_silent_when_the_forbid_is_present() {
    let r = check_one("crates/data/src/lib.rs", include_str!("fixtures/f1_good.rs"));
    assert!(r.clean(), "{:#?}", r.violations);
}

#[test]
fn f1_only_applies_to_crate_roots() {
    let r = check_one("crates/data/src/other.rs", include_str!("fixtures/f1_bad.rs"));
    assert!(r.clean(), "{:#?}", r.violations);
}

// ---------------------------------------------------------- L1/H1/G1 ----

#[test]
fn l1_fires_on_order_cycle_and_double_acquisition() {
    let r = check_one("crates/net/src/shared.rs", include_str!("fixtures/l1_bad.rs"));
    let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
    assert!(rules(&r).iter().all(|&ru| ru == "L1"), "{:#?}", r.violations);
    assert!(msgs.iter().any(|m| m.contains("acquisition-order cycle")), "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("conns -> stats -> conns")
        || m.contains("stats -> conns -> stats")), "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("already live")), "{msgs:#?}");
}

#[test]
fn l1_silent_on_consistent_order_and_scoped_guards() {
    let r = check_one("crates/net/src/shared.rs", include_str!("fixtures/l1_good.rs"));
    assert!(r.clean(), "{:#?}", r.violations);
}

#[test]
fn l1_ignores_non_concurrent_crates() {
    let r = check_one("crates/bench/src/shared.rs", include_str!("fixtures/l1_bad.rs"));
    assert!(!rules(&r).contains(&"L1"), "{:#?}", r.violations);
}

#[test]
fn h1_fires_on_direct_and_transitive_io_under_guard() {
    let r = check_one("crates/net/src/out.rs", include_str!("fixtures/h1_bad.rs"));
    let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
    assert!(rules(&r).iter().all(|&ru| ru == "H1"), "{:#?}", r.violations);
    assert!(msgs.iter().any(|m| m.contains("`write_all` I/O")), "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("calls `persist`")), "{msgs:#?}");
}

#[test]
fn h1_silent_when_io_moves_outside_the_guard() {
    let r = check_one("crates/net/src/out.rs", include_str!("fixtures/h1_good.rs"));
    assert!(r.clean(), "{:#?}", r.violations);
}

const G1_MANIFEST: &str = "pair net admit finish_inflight owner=handle_frame\n\
                           pair net swap_remove release_pending scope=block\n";

#[test]
fn g1_fires_on_leak_early_exit_and_block_scope() {
    let r = check_one_with_pairs(
        "crates/net/src/admission.rs",
        include_str!("fixtures/g1_bad.rs"),
        G1_MANIFEST,
    );
    let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
    assert_eq!(rules(&r), vec!["G1", "G1", "G1"], "{:#?}", r.violations);
    assert!(msgs.iter().any(|m| m.contains("never `finish_inflight`")), "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("early exit between `admit`")), "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("without `release_pending` in the same block")),
        "{msgs:#?}");
}

#[test]
fn g1_silent_on_balanced_owner_and_block_release() {
    let r = check_one_with_pairs(
        "crates/net/src/admission.rs",
        include_str!("fixtures/g1_good.rs"),
        G1_MANIFEST,
    );
    assert!(r.clean(), "{:#?}", r.violations);
}

// ---------------------------------------------------------------- X1 ----

const MINI_PROTOCOL: &str = "
pub enum Opcode {
    Ping = 0x01,
    Get = 0x02,
}
";

const MINI_SERVER: &str = "
fn dispatch(op: Opcode) {
    match op {
        Opcode::Ping => reply(),
        Opcode::Get => get(),
    }
}
";

const MINI_CLIENT: &str = "
pub fn ping() { send(Opcode::Ping); }
pub fn get() { send(Opcode::Get); }
";

const MINI_TEST: &str = "
#[test]
fn wire() { assert_eq!(count(Opcode::Ping), count(Opcode::Get)); }
";

fn x1_workspace(server: &str, client: &str, test: &str) -> Report {
    Workspace::from_memory(vec![
        ("crates/net/src/protocol.rs".to_string(), MINI_PROTOCOL.to_string()),
        ("crates/net/src/server.rs".to_string(), server.to_string()),
        ("crates/net/src/client.rs".to_string(), client.to_string()),
        ("crates/net/tests/wire.rs".to_string(), test.to_string()),
    ])
    .check(&Budget::zero())
}

#[test]
fn x1_silent_when_every_opcode_is_fully_wired() {
    let r = x1_workspace(MINI_SERVER, MINI_CLIENT, MINI_TEST);
    assert!(r.clean(), "{:#?}", r.violations);
}

#[test]
fn x1_fires_when_a_dispatch_arm_disappears() {
    let server = MINI_SERVER.replace("Opcode::Get => get(),", "_ => reply(),");
    let r = x1_workspace(&server, MINI_CLIENT, MINI_TEST);
    assert_eq!(rules(&r), vec!["X1"], "{:#?}", r.violations);
    assert!(r.violations[0].message.contains("`Get` has no dispatch arm"));
}

#[test]
fn x1_fires_when_client_plumbing_is_missing() {
    let client = MINI_CLIENT.replace("pub fn get() { send(Opcode::Get); }", "");
    let r = x1_workspace(MINI_SERVER, &client, MINI_TEST);
    assert_eq!(rules(&r), vec!["X1"], "{:#?}", r.violations);
    assert!(r.violations[0].message.contains("never referenced by client.rs"));
}

#[test]
fn x1_fires_when_test_coverage_is_missing() {
    let test = MINI_TEST.replace("count(Opcode::Get)", "0");
    let r = x1_workspace(MINI_SERVER, MINI_CLIENT, &test);
    assert_eq!(rules(&r), vec!["X1"], "{:#?}", r.violations);
    assert!(r.violations[0].message.contains("not mentioned by any test"));
}

// ------------------------------------------------- X1 error replies ----

const REPLY_PROTOCOL: &str = "
pub enum Opcode {
    Ping = 0x01,
    Err = 0x7e,
    Busy = 0x7f,
}
";

const REPLY_SERVER: &str = "
fn dispatch(op: Opcode) {
    match op {
        Opcode::Ping => reply(),
        Opcode::Err => echo_err(),
        Opcode::Busy => echo_busy(),
    }
}
";

const REPLY_CLIENT: &str = "
pub fn ping() { send(Opcode::Ping); }
pub fn decode_reply(op: Opcode) { classify(Opcode::Err, Opcode::Busy, op); }
";

const REPLY_TEST_ASSERTED: &str = "
#[test]
fn error_paths() {
    touch(Opcode::Ping);
    assert_eq!(oversized_reply.opcode, Opcode::Err);
    assert!(matches!(flooded_reply.opcode, Opcode::Busy));
}
";

const REPLY_TEST_UNASSERTED: &str = "
#[test]
fn error_paths() {
    touch(Opcode::Ping);
    let _classified = classify(Opcode::Err, Opcode::Busy, reply.opcode);
}
";

fn x1_reply_workspace(test: &str) -> Report {
    Workspace::from_memory(vec![
        ("crates/net/src/protocol.rs".to_string(), REPLY_PROTOCOL.to_string()),
        ("crates/net/src/server.rs".to_string(), REPLY_SERVER.to_string()),
        ("crates/net/src/client.rs".to_string(), REPLY_CLIENT.to_string()),
        ("crates/net/tests/wire.rs".to_string(), test.to_string()),
    ])
    .check(&Budget::zero())
}

#[test]
fn x1_silent_when_error_replies_are_asserted() {
    let r = x1_reply_workspace(REPLY_TEST_ASSERTED);
    assert!(r.clean(), "{:#?}", r.violations);
}

#[test]
fn x1_fires_when_error_replies_are_merely_mentioned() {
    let r = x1_reply_workspace(REPLY_TEST_UNASSERTED);
    assert_eq!(rules(&r), vec!["X1", "X1"], "{:#?}", r.violations);
    let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`Err` is never asserted")), "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("`Busy` is never asserted")), "{msgs:#?}");
}

// ---------------------------------------------------------------- M1 ----

const MINI_TAXONOMY: &str = r#"
pub const TAXONOMY: &[(&str, &str)] = &[
    ("mmlib_demo_total", "a demo counter"),
    ("mmlib_idle_total", "declared but never registered"),
];
"#;

const MINI_USER: &str = r#"
pub fn register(r: &Registry) {
    r.counter("mmlib_demo_total");
}
"#;

fn m1_workspace(taxonomy: &str, user: &str) -> Report {
    Workspace::from_memory(vec![
        ("crates/obs/src/taxonomy.rs".to_string(), taxonomy.to_string()),
        ("crates/model/src/metrics.rs".to_string(), user.to_string()),
    ])
    .check(&Budget::zero())
}

#[test]
fn m1_fires_on_undeclared_and_dead_metrics() {
    let user = MINI_USER.replace(
        "r.counter(\"mmlib_demo_total\");",
        "r.counter(\"mmlib_demo_total\");\n    r.counter(\"mmlib_rogue_total\");",
    );
    let r = m1_workspace(MINI_TAXONOMY, &user);
    let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`mmlib_rogue_total`") && m.contains("missing from")));
    assert!(msgs.iter().any(|m| m.contains("`mmlib_idle_total`") && m.contains("never registered")));
}

#[test]
fn m1_fires_on_duplicate_and_camel_case_declarations() {
    let taxonomy = MINI_TAXONOMY.replace(
        "(\"mmlib_idle_total\", \"declared but never registered\"),",
        "(\"mmlib_demo_total\", \"duplicate\"),\n    (\"mmlib_BadName_total\", \"camel\"),",
    );
    let user = MINI_USER.replace(
        "r.counter(\"mmlib_demo_total\");",
        "r.counter(\"mmlib_demo_total\");\n    r.counter(\"mmlib_BadName_total\");",
    );
    let r = m1_workspace(&taxonomy, &user);
    let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("declared more than once")), "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("not snake_case")), "{msgs:#?}");
}

#[test]
fn m1_silent_when_taxonomy_and_usage_agree() {
    let taxonomy = MINI_TAXONOMY
        .replace("    (\"mmlib_idle_total\", \"declared but never registered\"),\n", "");
    let r = m1_workspace(&taxonomy, MINI_USER);
    assert!(r.clean(), "{:#?}", r.violations);
}
