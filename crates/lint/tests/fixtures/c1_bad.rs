//! C1 bad fixture: a silently truncating length cast on the wire path.
//! Scanned as `crates/net/src/<name>.rs`.

pub fn header(body_len: u64) -> u32 {
    body_len as u32
}
