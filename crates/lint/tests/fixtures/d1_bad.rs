//! D1 bad fixture: wall-clock reads and OS entropy in a deterministic
//! crate's library code. Scanned as `crates/tensor/src/<name>.rs`.

pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    t.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

pub fn seed() -> u64 {
    thread_rng()
}
