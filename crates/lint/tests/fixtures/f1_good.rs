//! F1 good fixture: the forbid is present.

#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
