//! H1 bad fixture: `flush` writes to the socket while the queue guard is
//! live, and `checkpoint` reaches file I/O through a call edge
//! (`persist` does `fs::write`) with the same guard held.

pub struct Out {
    queue: Mutex<OutQueue>,
}

impl Out {
    pub fn flush(&self, stream: &mut TcpStream) -> Result<(), WireError> {
        let queue = self.queue.lock();
        for buf in queue.iter() {
            stream.write_all(buf)?;
        }
        Ok(())
    }

    fn persist(&self, path: &Path, bytes: &[u8]) -> Result<(), WireError> {
        std::fs::write(path, bytes)?;
        Ok(())
    }

    pub fn checkpoint(&self, path: &Path) -> Result<(), WireError> {
        let queue = self.queue.lock();
        self.persist(path, queue.tail())?;
        Ok(())
    }
}
