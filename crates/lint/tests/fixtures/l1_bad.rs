//! L1 bad fixture: `broadcast` takes `conns` then `stats`, `tally` takes
//! `stats` then `conns` — an acquisition-order cycle. `reap` re-acquires
//! `conns` while its own guard is still live — a direct self-deadlock.

pub struct Shared {
    conns: Mutex<Vec<Conn>>,
    stats: Mutex<Stats>,
}

impl Shared {
    pub fn broadcast(&self, frame: &Frame) {
        let conns = self.conns.lock();
        let mut stats = self.stats.lock();
        stats.broadcasts += 1;
        for c in conns.iter() {
            c.enqueue(frame);
        }
    }

    pub fn tally(&self) -> usize {
        let stats = self.stats.lock();
        let conns = self.conns.lock();
        stats.observe(conns.len());
        conns.len()
    }

    pub fn reap(&self) {
        let conns = self.conns.lock();
        if conns.is_empty() {
            let again = self.conns.lock();
            drop(again);
        }
    }
}
