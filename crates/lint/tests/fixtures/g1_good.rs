//! G1 good fixture, against the manifest
//!   pair net admit finish_inflight owner=handle_frame
//!   pair net swap_remove release_pending scope=block
//!
//! `begin_upload` fails on the admit call itself (never charged) or
//! releases before any later exit; `handle_frame` is a declared owner and
//! hands the obligation to the pending set; `reap` releases in the same
//! block that removed the connection.

pub fn begin_upload(state: &State, len: usize) -> Result<Token, WireError> {
    admit(state, len)?;
    let tok = make_token(state);
    finish_inflight(state, len);
    validate(&tok)?;
    Ok(tok)
}

pub fn handle_frame(state: &State, len: usize) {
    admit(state, len);
    park_pending(state, len);
}

pub fn reap(conns: &mut Vec<Conn>, state: &State) {
    let mut i = 0;
    while i < conns.len() {
        if conns[i].dead {
            let dead = conns.swap_remove(i);
            release_pending(state, &dead);
        } else {
            i += 1;
        }
    }
}
