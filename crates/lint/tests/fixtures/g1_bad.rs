//! G1 bad fixture, against the manifest
//!   pair net admit finish_inflight owner=handle_frame
//!   pair net swap_remove release_pending scope=block
//!
//! `begin_upload` has an early `?` between admit and finish_inflight,
//! `abort_upload` never releases at all, and `reap` releases outside the
//! block that removed the connection.

pub fn begin_upload(state: &State, len: usize) -> Result<Token, WireError> {
    admit(state, len)?;
    let tok = make_token(state);
    validate(&tok)?;
    finish_inflight(state, len);
    Ok(tok)
}

pub fn abort_upload(state: &State, len: usize) {
    admit(state, len);
    log_abort(state);
}

pub fn reap(conns: &mut Vec<Conn>, state: &State) {
    let mut i = 0;
    while i < conns.len() {
        if conns[i].dead {
            let dead = conns.swap_remove(i);
            drop(dead);
        } else {
            i += 1;
        }
    }
    release_pending(state);
}
