//! F1 bad fixture: a crate root without the unsafe-code forbid.
//! Scanned as `crates/<name>/src/lib.rs`.

pub fn answer() -> u32 {
    42
}
