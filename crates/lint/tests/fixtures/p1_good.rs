//! P1 good fixture: errors propagate; non-panicking cousins
//! (`unwrap_or`) stay legal, and test code is exempt.

pub fn parse_port(s: &str) -> Result<u16, std::num::ParseIntError> {
    s.parse()
}

pub fn fallback(v: Option<u16>) -> u16 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::parse_port("80").unwrap(), 80);
    }
}
