//! P1 bad fixture: panicking calls in a panic-free crate's library code.
//! Scanned as `crates/net/src/<name>.rs`.

pub fn parse_port(s: &str) -> u16 {
    s.parse().unwrap()
}

pub fn not_done() {
    todo!("later")
}
