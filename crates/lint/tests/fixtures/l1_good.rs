//! L1 good fixture: both multi-lock paths take `conns` before `stats`
//! (one consistent order, no cycle), and `reap` drops its first guard —
//! by block scope — before re-acquiring.

pub struct Shared {
    conns: Mutex<Vec<Conn>>,
    stats: Mutex<Stats>,
}

impl Shared {
    pub fn broadcast(&self, frame: &Frame) {
        let conns = self.conns.lock();
        let mut stats = self.stats.lock();
        stats.broadcasts += 1;
        for c in conns.iter() {
            c.enqueue(frame);
        }
    }

    pub fn tally(&self) -> usize {
        let conns = self.conns.lock();
        let stats = self.stats.lock();
        stats.observe(conns.len());
        conns.len()
    }

    pub fn reap(&self) {
        let n = {
            let conns = self.conns.lock();
            conns.len()
        };
        if n > 0 {
            let conns = self.conns.lock();
            drop(conns);
        }
    }
}
