//! D1 good fixture: explicit seeding only; timing confined to test code,
//! which the rule exempts.

pub fn seed(base: u64) -> u64 {
    base.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let start = std::time::Instant::now();
        assert_eq!(super::seed(0), 0);
        let _ = start.elapsed();
    }
}
