//! C1 good fixture: checked conversion for lengths, and narrowing casts
//! of values that are not byte counts.

pub fn header(body_len: u64) -> Result<u32, String> {
    u32::try_from(body_len).map_err(|_| format!("frame of {body_len} B overflows the header"))
}

pub fn opcode_byte(op: u32) -> u8 {
    (op & 0xff) as u8
}
