//! H1 good fixture: the same flush/checkpoint logic with the critical
//! section narrowed — data is copied out under the guard, and the socket
//! or file I/O happens after the guard's block closes.

pub struct Out {
    queue: Mutex<OutQueue>,
}

impl Out {
    pub fn flush(&self, stream: &mut TcpStream) -> Result<(), WireError> {
        let drained = {
            let mut queue = self.queue.lock();
            queue.drain_all()
        };
        for buf in &drained {
            stream.write_all(buf)?;
        }
        Ok(())
    }

    fn persist(&self, path: &Path, bytes: &[u8]) -> Result<(), WireError> {
        std::fs::write(path, bytes)?;
        Ok(())
    }

    pub fn checkpoint(&self, path: &Path) -> Result<(), WireError> {
        let snapshot = {
            let queue = self.queue.lock();
            queue.snapshot()
        };
        self.persist(path, &snapshot)?;
        Ok(())
    }
}
