//! Cross-crate integration tests through the `mmlib` facade: mixed-approach
//! model chains, the full standard flow per approach, and adaptive saving.

use mmlib::core::adaptive::{choose_approach, Policy, SaveScenario};
use mmlib::core::meta::{ApproachKind, ModelRelation};
use mmlib::core::{RecoverOptions, SaveService, TrainProvenance};
use mmlib::data::loader::LoaderConfig;
use mmlib::data::{DataLoader, Dataset, DatasetId};
use mmlib::dist::flow::{run_flow, FlowConfig};
use mmlib::model::{ArchId, Model};
use mmlib::store::ModelStorage;
use mmlib::tensor::ExecMode;
use mmlib::train::{ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};

const SCALE: f64 = 1.0 / 8192.0;

fn train_once(
    model: &mut Model,
    seed: u64,
) -> (TrainProvenance, LoaderConfig, TrainConfig) {
    let loader_config = LoaderConfig {
        batch_size: 2,
        resolution: 16,
        seed,
        max_images: Some(4),
        ..Default::default()
    };
    let sgd_config = SgdConfig::default();
    let train_config = TrainConfig {
        epochs: 1,
        max_batches_per_epoch: Some(2),
        seed,
        mode: ExecMode::Deterministic,
    };
    let sgd = Sgd::new(sgd_config);
    let prov = TrainProvenance {
        dataset_id: DatasetId::CocoFood512,
        dataset_scale: SCALE,
        dataset_external: false,
        loader_config,
        optimizer: sgd_config.into(),
        optimizer_state_before: sgd.state_bytes(),
        train_config,
        relation: ModelRelation::PartiallyUpdated,
    };
    let loader = DataLoader::new(Dataset::new(DatasetId::CocoFood512, SCALE), loader_config);
    let mut trainer = ImageNetTrainService::new(loader, sgd, train_config);
    trainer.train(model);
    (prov, loader_config, train_config)
}

#[test]
fn mixed_approach_chain_recovers_exactly() {
    // BA initial -> PUA update -> MPA provenance -> PUA update: the recovery
    // dispatcher must resolve a chain whose links were saved by different
    // approaches (the store records the approach per document).
    let dir = tempfile::tempdir().unwrap();
    let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());

    let mut model = Model::new_initialized(ArchId::ResNet18, 1);
    model.set_fully_trainable();
    let id0 = svc.save_full(&model, None, "initial").unwrap();

    model.set_classifier_only_trainable();
    train_once(&mut model, 10);
    let (id1, _) = svc.save_update(&model, &id0, "partially_updated").unwrap();

    let (prov, _, _) = train_once(&mut model, 11);
    let id2 = svc.save_provenance(&model, &id1, &prov).unwrap();

    train_once(&mut model, 12);
    let (id3, _) = svc.save_update(&model, &id2, "partially_updated").unwrap();

    let recovered = svc.recover(&id3, RecoverOptions::default()).unwrap();
    assert!(recovered.model.models_equal(&model), "mixed chain must recover bit-exactly");
    assert_eq!(recovered.breakdown.recovered_bases, 3);
}

#[test]
fn adaptive_choice_saves_and_recovers() {
    // Drive the §4.7 heuristic end to end: let it pick the approach, save
    // accordingly, and verify exact recovery.
    let dir = tempfile::tempdir().unwrap();
    let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
    let mut model = Model::new_initialized(ArchId::ResNet18, 2);
    model.set_fully_trainable();
    let base = svc.save_full(&model, None, "initial").unwrap();

    model.set_classifier_only_trainable();
    let (prov, _, _) = train_once(&mut model, 20);

    let dataset_bytes = Dataset::new(DatasetId::CocoFood512, SCALE).total_bytes();
    let scenario = SaveScenario::from_model(
        &model,
        dataset_bytes,
        false,
        std::time::Duration::from_millis(500),
        0,
    );
    let decision = choose_approach(&scenario, &Policy::default());
    let id = match decision.approach {
        ApproachKind::Baseline => svc.save_full(&model, Some(&base), "partially_updated").unwrap(),
        ApproachKind::ParamUpdate => {
            svc.save_update(&model, &base, "partially_updated").unwrap().0
        }
        ApproachKind::Provenance => svc.save_provenance(&model, &base, &prov).unwrap(),
    };
    let recovered = svc.recover(&id, RecoverOptions::default()).unwrap();
    assert!(recovered.model.models_equal(&model));
}

#[test]
fn standard_flow_via_facade_for_every_approach() {
    for approach in ApproachKind::all() {
        let dir = tempfile::tempdir().unwrap();
        let mut config =
            FlowConfig::standard(approach, ArchId::ResNet18, ModelRelation::PartiallyUpdated);
        config.dataset_scale = SCALE;
        config.train.resolution = 16;
        config.recover_all = true;
        let result = run_flow(&config, dir.path());
        assert_eq!(result.saves.len(), 10, "{approach}");
        assert_eq!(result.recovers.len(), 10, "{approach}");
    }
}

#[test]
fn recover_options_depth_limit_guards_chains() {
    let dir = tempfile::tempdir().unwrap();
    let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
    let mut model = Model::new_initialized(ArchId::ResNet18, 3);
    model.set_fully_trainable();
    let mut base = svc.save_full(&model, None, "initial").unwrap();
    for seed in 0..3 {
        model.set_classifier_only_trainable();
        train_once(&mut model, 30 + seed);
        base = svc.save_update(&model, &base, "partially_updated").unwrap().0;
    }
    let opts = RecoverOptions { max_chain_depth: 1, ..Default::default() };
    let err = svc.recover(&base, opts).unwrap_err();
    assert!(matches!(err, mmlib::core::CoreError::BaseChainTooDeep { .. }));
}
