//! The fault matrix: every save approach (BA / PUA / MPA) crossed with 32
//! seeded storage fault plans.
//!
//! Each cell runs save → crash → reopen → fsck-repair → recover. The
//! invariant under test is the crash-consistency contract of the atomic
//! write layer: a save either commits completely or not at all, so after a
//! crash every model the store still lists recovers **byte-identical** to
//! the model that was saved — corruption is never silent. Failed saves
//! leave at most orphaned artifacts, which `fsck --repair` quarantines,
//! after which the store checks fully clean.
//!
//! The seed base is fixed so the matrix is deterministic; set
//! `MMLIB_FAULT_SEED_BASE` to explore a different region of the fault
//! space (failures print the exact seed for reproduction).

use mmlib::core::fsck::{fsck, FsckOptions};
use mmlib::core::meta::{ApproachKind, ModelRelation, SavedModelId};
use mmlib::core::{RecoverOptions, SaveService, TrainProvenance};
use mmlib::data::loader::LoaderConfig;
use mmlib::data::{DataLoader, Dataset, DatasetId};
use mmlib::model::{ArchId, Model};
use mmlib::store::fault::FaultPlan;
use mmlib::store::ModelStorage;
use mmlib::tensor::ExecMode;
use mmlib::train::{ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};

const SEEDS_PER_APPROACH: u64 = 32;
const SCALE: f64 = 1.0 / 8192.0;

/// Fixed default so CI runs the same matrix every time; overridable to
/// sweep a different region of the fault space.
fn seed_base() -> u64 {
    std::env::var("MMLIB_FAULT_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xfa_117)
}

/// One deterministic tiny training step (same shape as the end-to-end
/// tests, scaled down to keep 96 matrix cells fast).
fn train_once(model: &mut Model, seed: u64) -> TrainProvenance {
    let loader_config = LoaderConfig {
        batch_size: 2,
        resolution: 8,
        seed,
        max_images: Some(4),
        ..Default::default()
    };
    let sgd_config = SgdConfig::default();
    let train_config = TrainConfig {
        epochs: 1,
        max_batches_per_epoch: Some(2),
        seed,
        mode: ExecMode::Deterministic,
    };
    let sgd = Sgd::new(sgd_config);
    let prov = TrainProvenance {
        dataset_id: DatasetId::CocoOutdoor512,
        dataset_scale: SCALE,
        dataset_external: false,
        loader_config,
        optimizer: sgd_config.into(),
        optimizer_state_before: sgd.state_bytes(),
        train_config,
        relation: ModelRelation::PartiallyUpdated,
    };
    let loader =
        DataLoader::new(Dataset::new(DatasetId::CocoOutdoor512, SCALE), loader_config);
    let mut trainer = ImageNetTrainService::new(loader, sgd, train_config);
    trainer.train(model);
    prov
}

/// Performs the approach's save sequence against `svc`, which may fail at
/// any point from an injected fault. Returns the saves that *committed*,
/// paired with a snapshot of the exact model each one captured.
fn save_sequence(
    svc: &SaveService,
    approach: ApproachKind,
    seed: u64,
) -> Vec<(SavedModelId, Model)> {
    let mut committed = Vec::new();

    let mut model = Model::new_initialized(ArchId::TinyCnn, 1);
    model.set_fully_trainable();
    let base_id = match svc.save_full(&model, None, "initial") {
        Ok(id) => id,
        Err(_) => return committed, // typed failure; nothing committed
    };
    committed.push((base_id.clone(), model.duplicate()));

    model.set_classifier_only_trainable();
    let result = match approach {
        ApproachKind::Baseline => {
            model.visit_trainable_mut(&mut |_, param, _| param.data_mut()[0] += 0.25);
            svc.save_full(&model, Some(&base_id), "partially_updated")
        }
        ApproachKind::ParamUpdate => {
            model.visit_trainable_mut(&mut |_, param, _| param.data_mut()[0] += 0.25);
            svc.save_update(&model, &base_id, "partially_updated").map(|(id, _)| id)
        }
        ApproachKind::Provenance => {
            let prov = train_once(&mut model, seed);
            svc.save_provenance(&model, &base_id, &prov)
        }
    };
    if let Ok(id) = result {
        committed.push((id, model.duplicate()));
    }
    committed
}

/// One matrix cell: save under the seeded fault plan, crash (drop), reopen
/// clean, repair, and verify every surviving model byte-exactly. Returns
/// how many faults fired and how many saves committed.
fn run_cell(approach: ApproachKind, seed: u64) -> (u64, usize) {
    run_cell_with_plan(approach, seed, FaultPlan::storage_from_seed(seed))
}

fn run_cell_with_plan(approach: ApproachKind, seed: u64, plan: FaultPlan) -> (u64, usize) {
    let dir = tempfile::tempdir().unwrap();

    // Save under injected faults.
    let (storage, injector) = ModelStorage::open_with_faults(dir.path(), plan).unwrap();
    let plan = format!("{}", injector.plan());
    let committed = save_sequence(&SaveService::new(storage), approach, seed);
    let fired = injector.injected();
    // "Crash": the faulty handles are dropped here; only what the atomic
    // writes published survives on disk.

    // Reopen clean and quarantine whatever the failed saves left behind.
    let clean = ModelStorage::open(dir.path()).unwrap();
    fsck(&clean, &FsckOptions { repair: true, ..Default::default() })
        .unwrap_or_else(|e| panic!("{approach} {plan}: fsck failed: {e}"));
    let report = fsck(&clean, &FsckOptions::default())
        .unwrap_or_else(|e| panic!("{approach} {plan}: post-repair fsck failed: {e}"));
    assert!(
        report.is_clean(),
        "{approach} {plan}: store dirty after repair: {:?}",
        report.issues
    );

    // Every committed save must recover byte-identical to the snapshot the
    // save captured — a recovery that returns Ok with different bytes is
    // silent corruption, the one outcome the matrix exists to rule out.
    let svc = SaveService::new(clean);
    for (id, expected) in &committed {
        let recovered = svc
            .recover(id, RecoverOptions::default())
            .unwrap_or_else(|e| panic!("{approach} {plan}: committed save {id} lost: {e}"));
        assert!(
            recovered.model.models_equal(expected),
            "{approach} {plan}: model {id} recovered with different bytes (silent corruption)"
        );
    }

    // Lineage after crash + repair: the DAG must stay total over the
    // committed models. A crash between a model's commit and its lineage
    // record leaves a node synthesized from the model-info doc — never a
    // missing node, an orphaned record, or a dangling parent (those are
    // exactly what the fsck lineage pass quarantined above).
    let lineage = mmlib::lineage::Lineage::new(&svc);
    let graph = lineage
        .graph()
        .unwrap_or_else(|e| panic!("{approach} {plan}: lineage graph unloadable: {e}"));
    for (id, _) in &committed {
        assert!(
            graph.node(id).is_some(),
            "{approach} {plan}: committed model {id} has no lineage node"
        );
        let ancestry = lineage
            .ancestry(id)
            .unwrap_or_else(|e| panic!("{approach} {plan}: ancestry of {id} broken: {e}"));
        assert!(
            ancestry.iter().all(|n| graph.node(&n.id).is_some()),
            "{approach} {plan}: ancestry of {id} references a missing model"
        );
    }
    (fired, committed.len())
}

fn run_approach(approach: ApproachKind, salt: u64) {
    let base = seed_base();
    let mut total_fired = 0u64;
    let mut interrupted_cells = 0usize;
    for i in 0..SEEDS_PER_APPROACH {
        let (fired, committed) = run_cell(approach, base.wrapping_add(salt).wrapping_add(i));
        total_fired += fired;
        if committed < 2 {
            interrupted_cells += 1;
        }
    }
    // Guard against the matrix degenerating into a fault-free no-op: over
    // 32 plans, faults must actually fire and interrupt some saves.
    assert!(total_fired > 0, "{approach}: no fault fired across the whole matrix");
    assert!(
        interrupted_cells > 0,
        "{approach}: every save sequence completed untouched — plans miss the write window"
    );
}

/// Batch-write crash cells: one precisely-placed fault per cell, swept
/// across every write-operation index of the save sequence so the fault
/// lands on each stage of the batched commit path in turn. Three flavors
/// per index:
///
/// * a short torn write — mid-batch staging crash, or a batch commit that
///   renames only a prefix of its items (in item order);
/// * an IO error — the batch commit failing before any rename (and, at
///   stage indices, a stage failing before any byte is written);
/// * a torn write cut past the end — every rename lands but the crash
///   hits between the last batch rename and the directory fsync.
///
/// The invariant is the same as the seeded matrix: reopen → fsck repairs
/// to clean → every committed save recovers byte-identical, and lineage
/// stays total over the committed models.
fn run_batch_crash_sweep(approach: ApproachKind, salt: u64) {
    use mmlib::store::fault::Fault;
    // The two saves of a sequence consume well under 20 write operations
    // (stages, batch commits, model-info, lineage); sweeping them all hits
    // every stage index and both batch-commit indices of each save.
    const OPS_TO_SWEEP: u64 = 18;
    let base = seed_base();
    let mut total_fired = 0u64;
    let mut interrupted_cells = 0usize;
    for op in 0..OPS_TO_SWEEP {
        let cells = [
            Fault::TornWrite { after_bytes: 1 + base.wrapping_add(op) % 7 },
            Fault::IoError,
            Fault::TornWrite { after_bytes: u64::MAX },
        ];
        for fault in cells {
            let plan = FaultPlan::new(base.wrapping_add(salt)).with(op, fault);
            let (fired, committed) =
                run_cell_with_plan(approach, base.wrapping_add(salt).wrapping_add(op), plan);
            total_fired += fired;
            if committed < 2 {
                interrupted_cells += 1;
            }
        }
    }
    assert!(total_fired > 0, "{approach}: no batch-sweep fault fired");
    assert!(
        interrupted_cells > 0,
        "{approach}: batch-sweep faults never interrupted a save — the sweep misses the write window"
    );
}

#[test]
fn fault_matrix_baseline() {
    run_approach(ApproachKind::Baseline, 0);
}

#[test]
fn fault_matrix_param_update() {
    run_approach(ApproachKind::ParamUpdate, 1_000);
}

#[test]
fn fault_matrix_provenance() {
    run_approach(ApproachKind::Provenance, 2_000);
}

#[test]
fn batch_crash_cells_baseline() {
    run_batch_crash_sweep(ApproachKind::Baseline, 3_000);
}

#[test]
fn batch_crash_cells_param_update() {
    run_batch_crash_sweep(ApproachKind::ParamUpdate, 4_000);
}

#[test]
fn batch_crash_cells_provenance() {
    run_batch_crash_sweep(ApproachKind::Provenance, 5_000);
}
