//! # mmlib — efficiently managing deep learning models in a distributed environment
//!
//! A from-scratch Rust reproduction of the EDBT 2022 paper *"Efficiently
//! Managing Deep Learning Models in a Distributed Environment"*
//! (Strassenburg, Tolovski, Rabl): three approaches for saving and
//! recovering **exact** deep-learning model representations —
//!
//! * the **baseline approach** (complete snapshots),
//! * the **parameter-update approach** (Merkle-tree layer diffs against a
//!   base model), and
//! * the **model-provenance approach** (store the training provenance and
//!   recover by deterministic replay),
//!
//! together with every substrate they need: a tensor library with
//! deterministic and non-deterministic kernels, the five torchvision
//! evaluation architectures re-implemented with exact parameter counts,
//! deterministic data loading over synthetic Table 1 datasets, restorable
//! SGD training, an embedded JSON document + file store, a probing tool for
//! model reproducibility, and a distributed evaluation-flow simulator.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under its short name.
//!
//! ```
//! use mmlib::core::{SaveService, RecoverOptions};
//! use mmlib::model::{ArchId, Model};
//! use mmlib::store::ModelStorage;
//!
//! let dir = tempfile::tempdir().unwrap();
//! let svc = SaveService::new(ModelStorage::open(dir.path()).unwrap());
//! let model = Model::new_initialized(ArchId::MobileNetV2, 7);
//! let id = svc.save_full(&model, None, "initial").unwrap();
//! let back = svc.recover(&id, RecoverOptions::default()).unwrap();
//! assert!(back.model.models_equal(&model));
//! ```

#![forbid(unsafe_code)]

/// Update compression: varints, zero-RLE, byte planes, XOR-delta codec.
pub use mmlib_compress as compress;
/// The model management library: the three approaches, Merkle trees,
/// environment capture, verification, and the probing tool.
pub use mmlib_core as core;
/// Synthetic datasets (paper Table 1), containers, and the data loader.
pub use mmlib_data as data;
/// Evaluation flows and the distributed server/node simulation.
pub use mmlib_dist as dist;
/// Model lineage DAG, delta-chain compaction, and batch family recovery.
pub use mmlib_lineage as lineage;
/// Layers, blocks, and the five evaluation architectures (paper Table 2).
pub use mmlib_model as model;
/// Wire protocol, TCP registry server, and remote store client.
pub use mmlib_net as net;
/// Metrics registry (counters/gauges/histograms), phase clocks and spans,
/// and the Prometheus text exposition.
pub use mmlib_obs as obs;
/// Document store, file store, and the simulated cluster network.
pub use mmlib_store as store;
/// Tensors, deterministic/parallel kernels, PRNG, SHA-256, serialization.
pub use mmlib_tensor as tensor;
/// Loss, restorable SGD, the train service, and training instrumentation.
pub use mmlib_train as train;
