//! Store maintenance: dependency-aware deletion and garbage collection.
//!
//! ```text
//! cargo run --release --example store_maintenance
//! ```
//!
//! A store accumulates a chain of derived models plus an abandoned side
//! branch. Deleting a base model that other models still need is refused;
//! garbage collection keeps the chains of the models you declare live and
//! sweeps the rest — including the multi-megabyte dataset containers owned
//! by abandoned provenance saves.

use mmlib::core::gc::{collect_garbage, delete_model, dependency_graph};
use mmlib::core::meta::ModelRelation;
use mmlib::core::{SaveService, TrainProvenance};
use mmlib::data::loader::LoaderConfig;
use mmlib::data::{DataLoader, Dataset, DatasetId};
use mmlib::model::{ArchId, Model};
use mmlib::store::ModelStorage;
use mmlib::tensor::ExecMode;
use mmlib::train::{ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};

const SCALE: f64 = 1.0 / 1024.0;

fn retrain(model: &mut Model, seed: u64) -> TrainProvenance {
    model.set_classifier_only_trainable();
    let loader_config = LoaderConfig {
        batch_size: 2,
        resolution: 16,
        seed,
        max_images: Some(4),
        ..Default::default()
    };
    let sgd_config = SgdConfig::default();
    let train_config = TrainConfig {
        epochs: 1,
        max_batches_per_epoch: Some(2),
        seed,
        mode: ExecMode::Deterministic,
    };
    let sgd = Sgd::new(sgd_config);
    let prov = TrainProvenance {
        dataset_id: DatasetId::CocoFood512,
        dataset_scale: SCALE,
        dataset_external: false,
        loader_config,
        optimizer: sgd_config.into(),
        optimizer_state_before: sgd.state_bytes(),
        train_config,
        relation: ModelRelation::PartiallyUpdated,
    };
    let loader = DataLoader::new(Dataset::new(DatasetId::CocoFood512, SCALE), loader_config);
    let mut trainer = ImageNetTrainService::new(loader, sgd, train_config);
    trainer.train(model);
    prov
}

fn main() {
    let dir = tempfile::tempdir().expect("temp dir");
    let svc = SaveService::new(ModelStorage::open(dir.path()).expect("open storage"));

    // Build: initial --PUA--> v1 --PUA--> v2, plus an abandoned provenance
    // experiment branched off v1.
    let mut model = Model::new_initialized(ArchId::ResNet18, 1);
    model.set_fully_trainable();
    let initial = svc.save_full(&model, None, "initial").unwrap();

    retrain(&mut model, 10);
    let (v1, _) = svc.save_update(&model, &initial, "partially_updated").unwrap();

    let mut experiment = model.duplicate();
    let prov = retrain(&mut experiment, 99);
    let abandoned = svc.save_provenance(&experiment, &v1, &prov).unwrap();

    retrain(&mut model, 11);
    let (v2, _) = svc.save_update(&model, &v1, "partially_updated").unwrap();

    let graph = dependency_graph(&svc).unwrap();
    println!("store holds {} models:", graph.models.len());
    for (id, info) in &graph.models {
        println!(
            "  {id}  {} {:?} (dependents: {})",
            info.approach.abbrev(),
            info.relation,
            graph.dependents.get(id).map_or(0, |d| d.len())
        );
    }

    // Deleting v1 must be refused: v2 and the experiment still need it.
    println!("\ntrying to delete the base {v1} ...");
    match delete_model(&svc, &v1) {
        Err(e) => println!("  refused, as it must be: {e}"),
        Ok(_) => unreachable!("deleting a depended-upon base must fail"),
    }

    // GC with v2 live: sweeps only the abandoned experiment.
    println!("\ngarbage-collecting with {v2} as the only live model ...");
    let report = collect_garbage(&svc, std::slice::from_ref(&v2)).unwrap();
    println!(
        "  removed {} model(s) ({}), {} files, {:.2} MB reclaimed",
        report.removed_models.len(),
        report
            .removed_models
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        report.removed_files,
        report.reclaimed_bytes as f64 / 1e6
    );
    assert_eq!(report.removed_models, vec![abandoned]);

    // v2 still recovers bit-exactly through its kept chain.
    let recovered = svc.recover(&v2, mmlib::core::RecoverOptions::default()).unwrap();
    assert!(recovered.model.models_equal(&model));
    println!(
        "\n{v2} still recovers bit-exactly (chain depth {}). ✓",
        recovered.breakdown.recovered_bases
    );
}
