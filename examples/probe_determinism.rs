//! Floating-point non-determinism and the probing tool (paper §2.3–2.4).
//!
//! ```text
//! cargo run --release --example probe_determinism
//! ```
//!
//! Part 1 reproduces the paper's Fig. 2: the same dot product computed with
//! a serial and a parallel reduction gives close-but-different `f32`
//! results, because floating-point addition is not associative.
//!
//! Part 2 runs the probing tool on a ResNet-18: in deterministic mode two
//! executions agree on every intermediate result; in parallel mode the
//! completion-order reductions diverge, and the probe pinpoints the first
//! layer where they do. Probe reports round-trip through bytes, modelling
//! verification across machines.

use mmlib::core::probe::{probe_reproducibility, ProbeReport};
use mmlib::data::loader::LoaderConfig;
use mmlib::data::{DataLoader, Dataset, DatasetId};
use mmlib::model::{ArchId, Model};
use mmlib::tensor::{ops, ExecMode, Pcg32};

fn main() {
    // ---- Part 1: Fig. 2 — serial vs parallel dot product. ----------------
    println!("— Fig. 2: dot-product reduction order matters in f32 —");
    let mut rng = Pcg32::seeded(1);
    for n in [1_000usize, 100_000, 1_000_000] {
        let a: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let serial = ops::dot_serial(&a, &b);
        let pairwise = ops::dot_pairwise(&a, &b);
        println!(
            "  n={n:>9}: serial={serial:>14.6}  parallel={pairwise:>14.6}  \
             |diff|={:.3e}  bit-equal={}",
            (serial - pairwise).abs(),
            serial.to_bits() == pairwise.to_bits(),
        );
    }

    // ---- Part 2: probing a model. ----------------------------------------
    println!("\n— probing tool: is ResNet-18 training reproducible? —");
    let mut model = Model::new_initialized(ArchId::ResNet18, 99);
    model.set_fully_trainable();
    let loader = DataLoader::new(
        Dataset::new(DatasetId::CocoOutdoor512, 1.0 / 512.0),
        LoaderConfig { batch_size: 4, resolution: 32, max_images: Some(4), ..Default::default() },
    );
    let batch = loader.batch(0, 0).expect("first batch");

    for mode in [ExecMode::Deterministic, ExecMode::Parallel] {
        let cmp = probe_reproducibility(&mut model, &batch, 7, mode);
        println!(
            "  {mode:?}: {} intermediate records compared -> {}",
            cmp.compared,
            if cmp.reproducible {
                "reproducible (bit-identical)".to_string()
            } else {
                format!("NON-reproducible, first divergence at {:?}", cmp.first_divergence.unwrap())
            }
        );
    }

    // ---- Cross-machine verification via serialized reports. --------------
    println!("\n— cross-machine verification —");
    let report = ProbeReport::run(&mut model, &batch, 7, ExecMode::Deterministic);
    let bytes = report.to_bytes();
    println!("  probe report serialized: {} bytes", bytes.len());
    // "The other machine" re-executes and compares against the shipped report.
    let shipped = ProbeReport::from_bytes(&bytes).expect("decode report");
    let rerun = ProbeReport::run(&mut model, &batch, 7, ExecMode::Deterministic);
    let cmp = shipped.compare(&rerun);
    println!(
        "  re-execution matches shipped report: {} ({} records)",
        cmp.reproducible, cmp.compared
    );
    assert!(cmp.reproducible);
}
