//! Adaptive approach selection — the paper's §4.7 future-work heuristic.
//!
//! ```text
//! cargo run --release --example adaptive_save
//! ```
//!
//! For each evaluation architecture and model relation, the heuristic
//! estimates what the baseline, parameter-update, and provenance approaches
//! would cost and picks one per save — reproducing the §4.7 discussion:
//! partial updates favor PUA; large models with small datasets favor MPA;
//! recovery-critical deployments pin BA; externally-managed datasets flip
//! MPA's economics.

use std::time::Duration;

use mmlib::core::adaptive::{choose_approach, Policy, SaveScenario};
use mmlib::data::DatasetId;
use mmlib::model::{ArchId, Model};

fn main() {
    let dataset = DatasetId::CocoFood512;
    println!(
        "training dataset: {} ({:.1} MB)\n",
        dataset.short_name(),
        dataset.paper_bytes() as f64 / 1e6
    );

    println!(
        "{:<13} {:<10} {:>10} {:>10} {:>10}   choice",
        "architecture", "relation", "BA (MB)", "PUA (MB)", "MPA (MB)"
    );
    for arch in ArchId::all() {
        for (relation, partial) in [("full", false), ("partial", true)] {
            let mut model = Model::new_initialized(arch, 0);
            if partial {
                model.set_classifier_only_trainable();
            } else {
                model.set_fully_trainable();
            }
            let scenario = SaveScenario::from_model(
                &model,
                dataset.paper_bytes(),
                false,
                Duration::from_secs(30),
                0,
            );
            let decision = choose_approach(&scenario, &Policy::default());
            println!(
                "{:<13} {:<10} {:>10.1} {:>10.1} {:>10.1}   {}",
                arch.name(),
                relation,
                scenario.estimated_bytes(mmlib::core::meta::ApproachKind::Baseline) as f64 / 1e6,
                scenario.estimated_bytes(mmlib::core::meta::ApproachKind::ParamUpdate) as f64 / 1e6,
                scenario.estimated_bytes(mmlib::core::meta::ApproachKind::Provenance) as f64 / 1e6,
                decision.approach,
            );
        }
    }

    // Two §4.7 special cases.
    println!("\n— §4.7 scenarios —");
    let mut model = Model::new_initialized(ArchId::MobileNetV2, 0);
    model.set_fully_trainable();

    let recovery_critical = choose_approach(
        &SaveScenario::from_model(&model, dataset.paper_bytes(), false, Duration::from_secs(30), 0),
        &Policy { prioritize_recovery: true, ..Default::default() },
    );
    println!("recovery-critical deployment  -> {} ({})", recovery_critical.approach, recovery_critical.rationale);

    let external = choose_approach(
        &SaveScenario::from_model(&model, dataset.paper_bytes(), true, Duration::from_secs(30), 0),
        &Policy::default(),
    );
    println!("dataset managed externally    -> {} ({})", external.approach, external.rationale);
}
