//! Battery-fleet scenario — the paper's motivating example (§1).
//!
//! ```text
//! cargo run --release --example battery_fleet
//! ```
//!
//! An automotive battery management system: every vehicle carries a battery
//! model that is regularly adapted to its own aging cells from measurements
//! collected during operation (use case U3), while the manufacturer
//! occasionally ships an improved factory model (U2). "In case of failure
//! ... the models need to be exactly reproducible in a central storage" —
//! an incident on one vehicle requires recovering the *exact* model that
//! vehicle was running, months of updates later.
//!
//! The fleet saves with the parameter-update approach: per-vehicle updates
//! touch only the adaptation head (partial updates), so each save ships a
//! tiny fraction of the full model over the vehicle uplink.

use std::time::Instant;

use mmlib::core::{RecoverOptions, SaveService};
use mmlib::data::loader::LoaderConfig;
use mmlib::data::{DataLoader, Dataset, DatasetId};
use mmlib::model::{ArchId, Model};
use mmlib::store::{ModelStorage, SimNetwork};
use mmlib::tensor::ExecMode;
use mmlib::train::{AnyOptimizer, ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};

const VEHICLES: usize = 4;
const UPDATE_ROUNDS: usize = 3;

fn main() {
    let dir = tempfile::tempdir().expect("temp dir");
    let storage = ModelStorage::open(dir.path()).expect("open storage");
    let svc = SaveService::new(storage);
    // Vehicles upload over a constrained cellular-class link, not the
    // paper's datacenter InfiniBand — storage savings become airtime.
    let uplink = SimNetwork::edge_1g();

    // The factory battery model, "initialized from laboratory measurements
    // of other cells of the same type". MobileNetV2 stands in for the
    // battery simulation network.
    let mut factory = Model::new_initialized(ArchId::MobileNetV2, 2024);
    factory.set_fully_trainable();
    let factory_id = svc.save_full(&factory, None, "initial").expect("save factory model");
    println!(
        "factory model registered: {} ({:.1} MB)\n",
        factory_id,
        factory.state_nbytes() as f64 / 1e6
    );

    // Each vehicle adapts its own copy from on-board measurements.
    let mut fleet: Vec<(Model, mmlib::core::meta::SavedModelId, AnyOptimizer)> = (0..VEHICLES)
        .map(|_| {
            (factory.duplicate(), factory_id.clone(), AnyOptimizer::from(Sgd::new(SgdConfig::default())))
        })
        .collect();

    for round in 0..UPDATE_ROUNDS {
        println!("— adaptation round {round} —");
        for (vehicle, (model, base, sgd)) in fleet.iter_mut().enumerate() {
            // On-board measurements: a small, vehicle-specific slice of data.
            let seed = (round * VEHICLES + vehicle) as u64;
            model.set_classifier_only_trainable();
            let loader = DataLoader::new(
                Dataset::new(DatasetId::CocoOutdoor512, 1.0 / 512.0),
                LoaderConfig {
                    batch_size: 2,
                    resolution: 32,
                    seed,
                    max_images: Some(4),
                    ..Default::default()
                },
            );
            let config = TrainConfig {
                epochs: 1,
                max_batches_per_epoch: Some(2),
                seed,
                mode: ExecMode::Deterministic,
            };
            let mut trainer = ImageNetTrainService::new(loader, sgd.config().build(), config);
            std::mem::swap(trainer.optimizer_mut(), sgd);
            trainer.train(model);
            std::mem::swap(trainer.optimizer_mut(), sgd);

            // Inform the central storage (U3): parameter update only.
            let before = svc.storage().bytes_written();
            let start = Instant::now();
            let (id, diff) = svc
                .save_update(model, base, "partially_updated")
                .expect("vehicle update save");
            let tts = start.elapsed();
            let bytes = svc.storage().bytes_written() - before;
            let airtime = uplink.transfer_time(bytes);
            println!(
                "  vehicle {vehicle}: {:>7.3} MB uplink ({:>6.1?} airtime, {} changed layers, save {tts:.1?})",
                bytes as f64 / 1e6,
                airtime,
                diff.changed.len(),
            );
            *base = id;
        }
    }

    // Full snapshots would have cost ~14 MB per update; compare.
    let full = factory.state_nbytes() as f64 / 1e6;
    println!(
        "\n(a full snapshot per update would cost {:.1} MB and {:?} airtime per vehicle)",
        full,
        uplink.transfer_time(factory.state_nbytes()),
    );

    // --- Incident: recover vehicle 2's exact current model centrally. ----
    let (expected, incident_id, _) = &fleet[2];
    println!("\nincident on vehicle 2 — recovering its exact model ({incident_id}) centrally ...");
    let start = Instant::now();
    let recovered = svc
        .recover(incident_id, RecoverOptions::default())
        .expect("incident recovery");
    println!(
        "recovered in {:?} through a chain of {} base models; bit-exact: {}",
        start.elapsed(),
        recovered.breakdown.recovered_bases,
        recovered.model.models_equal(expected),
    );
    assert!(recovered.model.models_equal(expected));
    println!("debugging can proceed on the exact in-field model. ✓");
}
