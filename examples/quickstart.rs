//! Quickstart: save and recover a model with all three approaches.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a ResNet-18, derives a partially-updated version by retraining the
//! classifier on a local dataset, and saves the derived model with the
//! baseline, parameter-update, and provenance approaches, printing what each
//! costs in storage, time-to-save, and time-to-recover.

use std::time::Instant;

use mmlib::core::meta::ModelRelation;
use mmlib::core::{RecoverOptions, SaveService, TrainProvenance};
use mmlib::data::loader::LoaderConfig;
use mmlib::data::{DataLoader, Dataset, DatasetId};
use mmlib::model::{ArchId, Model};
use mmlib::store::ModelStorage;
use mmlib::tensor::ExecMode;
use mmlib::train::{ImageNetTrainService, Sgd, SgdConfig, TrainConfig, TrainService};

fn main() {
    let dir = tempfile::tempdir().expect("temp dir");
    let storage = ModelStorage::open(dir.path()).expect("open storage");
    let svc = SaveService::new(storage);

    // --- An initial model (paper use case U1). ---------------------------
    let mut model = Model::new_initialized(ArchId::ResNet18, 42);
    model.set_fully_trainable();
    println!("initial ResNet-18: {} parameters, {:.1} MB state", model.param_count(),
        model.state_nbytes() as f64 / 1e6);
    let base_id = svc.save_full(&model, None, "initial").expect("save U1");
    println!("saved initial model as {base_id}\n");

    // --- Derive a partially-updated version (use case U3). ---------------
    // A node retrains only the classifier on locally collected data.
    model.set_classifier_only_trainable();
    let seed = 7;
    let loader_config = LoaderConfig {
        batch_size: 4,
        resolution: 32,
        seed,
        max_images: Some(8),
        ..Default::default()
    };
    let sgd_config = SgdConfig::default();
    let train_config = TrainConfig {
        epochs: 1,
        max_batches_per_epoch: Some(2),
        seed,
        mode: ExecMode::Deterministic, // required for provenance recovery
    };
    let dataset_scale = 1.0 / 256.0; // keep the example snappy
    let dataset = Dataset::new(DatasetId::CocoFood512, dataset_scale);
    let loader = DataLoader::new(dataset, loader_config);
    let sgd = Sgd::new(sgd_config);
    let provenance = TrainProvenance {
        dataset_id: DatasetId::CocoFood512,
        dataset_scale,
        dataset_external: false,
        loader_config,
        optimizer: sgd_config.into(),
        optimizer_state_before: sgd.state_bytes(),
        train_config,
        relation: ModelRelation::PartiallyUpdated,
    };
    let mut trainer = ImageNetTrainService::new(loader, sgd, train_config);
    trainer.train(&mut model);
    println!("retrained the classifier locally (loss = {:.3})\n", trainer.last_loss().unwrap());

    // --- Save the derived model with each approach. ----------------------
    let mut ids = Vec::new();
    for approach in ["baseline", "param_update", "provenance"] {
        let before = svc.storage().bytes_written();
        let start = Instant::now();
        let id = match approach {
            "baseline" => svc.save_full(&model, Some(&base_id), "partially_updated").unwrap(),
            "param_update" => {
                let (id, diff) = svc.save_update(&model, &base_id, "partially_updated").unwrap();
                println!(
                    "  (param-update diff: {} of {} layers changed, {} hash comparisons)",
                    diff.changed.len(),
                    model.layers().len(),
                    diff.comparisons
                );
                id
            }
            _ => svc.save_provenance(&model, &base_id, &provenance).unwrap(),
        };
        let tts = start.elapsed();
        let bytes = svc.storage().bytes_written() - before;
        println!("{approach:>13}: saved {:>10.3} MB in {:>8.1?}  -> {id}", bytes as f64 / 1e6, tts);
        ids.push((approach, id));
    }

    // --- Recover each one and verify bit-exactness (use case U4). --------
    println!();
    for (approach, id) in &ids {
        let start = Instant::now();
        let recovered = svc.recover(id, RecoverOptions::default()).expect("recover");
        let ttr = start.elapsed();
        assert!(recovered.model.models_equal(&model), "recovery must be exact");
        println!(
            "{approach:>13}: recovered bit-exactly in {ttr:>8.1?} \
             (chain depth {}, verify {:?})",
            recovered.breakdown.recovered_bases, recovered.breakdown.verify
        );
    }
    println!("\nAll three approaches recovered the exact same model. ✓");
}
